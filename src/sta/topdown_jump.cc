#include "sta/topdown_jump.h"

#include <algorithm>

#include "sta/relevance.h"
#include "util/check.h"

namespace xpwqo {
namespace {

/// Per-state jump classification, precomputed once per automaton.
struct StateJumpInfo {
  enum Kind {
    kNone,         // visit every node entered in this state
    kDescendants,  // loop (q,q): jump to topmost essential nodes (d_t/f_t)
    kLeftPath,     // loop (q,q>): jump along the left-most path (l_t)
    kRightPath,    // loop (q>,q): jump along the right-most path (r_t)
  };
  Kind kind = kNone;
  LabelSet essential = LabelSet::All();
};

std::vector<StateJumpInfo> ClassifyStates(const Sta& sta) {
  const StateId top = FindTopDownUniversal(sta);
  std::vector<StateJumpInfo> infos(sta.num_states());
  for (StateId q = 0; q < sta.num_states(); ++q) {
    StateJumpInfo& info = infos[q];
    // Skipping silently accepts the '#' leaves of the skipped region, so the
    // looping state must be a bottom state.
    if (!sta.IsBottom(q)) continue;
    LabelSet loop_both = LabelSet::None();
    LabelSet loop_left = LabelSet::None();
    LabelSet loop_right = LabelSet::None();
    for (const StaTransition& t : sta.transitions()) {
      if (t.from != q) continue;
      if (t.to1 == q && t.to2 == q) {
        loop_both = loop_both.Union(t.labels);
      } else if (t.to1 == q && t.to2 == top && top != kNoState) {
        loop_left = loop_left.Union(t.labels);
      } else if (t.to2 == q && t.to1 == top && top != kNoState) {
        loop_right = loop_right.Union(t.labels);
      }
    }
    auto try_kind = [&](const LabelSet& loop_in, StateJumpInfo::Kind kind) {
      // Selection must be witnessed, so selecting labels are essential even
      // where the automaton loops (e.g. q1,{b} => (q1,q1) in Example 2.1).
      LabelSet loop = loop_in.Minus(sta.SelectingLabels(q));
      if (loop.IsEmpty()) return false;
      LabelSet essential = loop.Complement();
      // Only finite essential sets can be enumerated through the label
      // index.
      if (!essential.IsFinite()) return false;
      info.kind = kind;
      info.essential = essential;
      return true;
    };
    // Priority mirrors Algorithm B.1's case order.
    if (try_kind(loop_both, StateJumpInfo::kDescendants)) continue;
    if (try_kind(loop_left, StateJumpInfo::kLeftPath)) continue;
    if (try_kind(loop_right, StateJumpInfo::kRightPath)) continue;
  }
  return infos;
}

template <typename TreeView>
class JumpRunner {
 public:
  JumpRunner(const Sta& sta, const TreeView& doc, const TreeIndex& index,
             const JumpRunOptions& options)
      : sta_(sta),
        doc_(doc),
        index_(index),
        options_(options),
        infos_(ClassifyStates(sta)),
        sink_(FindTopDownSink(sta)),
        monitor_(options.control) {}

  JumpRunResult Run() {
    XPWQO_CHECK(sta_.tops().size() == 1);
    JumpRunResult out;
    out.states.assign(doc_.num_nodes(), kNoState);
    result_ = &out;
    failed_ = false;
    // relevant_nodes at the root, then depth-first; the explicit stack holds
    // pending (node, state) visits in reverse document order. Visits pop in
    // document order, so the selected list grows in document order and the
    // max_selected cut keeps exactly the first k selections of the run.
    EnterChild(doc_.root(), sta_.tops()[0]);
    while (!stack_.empty() && !failed_) {
      if (options_.max_selected >= 0 &&
          static_cast<int64_t>(out.selected.size()) >=
              options_.max_selected) {
        out.truncated = true;
        break;
      }
      auto [n, q] = stack_.back();
      stack_.pop_back();
      Visit(n, q);
    }
    if (monitor_.stopped()) {
      // The partial run is not a valid partial mapping; return an empty
      // result carrying only the stop code and the work done so far.
      JumpRunStats stats = out.stats;
      out = JumpRunResult{};
      out.states.assign(doc_.num_nodes(), kNoState);
      out.stats = stats;
      out.interrupt = monitor_.stop_code();
      return out;
    }
    if (failed_) {
      out = JumpRunResult{};
      out.states.assign(doc_.num_nodes(), kNoState);
      return out;
    }
    out.accepting = true;
    std::sort(out.visited.begin(), out.visited.end());
    std::sort(out.selected.begin(), out.selected.end());
    return out;
  }

 private:
  /// relevant_nodes(t, c, q): schedules the top-most relevant visits for a
  /// child subtree rooted at `c` entered in state q.
  void EnterChild(NodeId c, StateId q) {
    const StateJumpInfo& info = infos_[q];
    switch (info.kind) {
      case StateJumpInfo::kNone:
        Push(c, q);
        return;
      case StateJumpInfo::kDescendants: {
        if (info.essential.Contains(doc_.label(c))) {
          Push(c, q);
          return;
        }
        ++result_->stats.jumps;
        // Push the topmost essential nodes, then reverse the pushed range in
        // place so the stack pops them in document order. The scope boundary
        // and the merged posting cursor are hoisted out of the enumeration
        // loop: f_t steps pay amortized movement over the compressed lists
        // (block-skipping seeks), not |L| fresh front-searches.
        const NodeId scope_end = doc_.BinaryEnd(c);
        LabelIndex::SetCursor cursor(index_.labels(), info.essential);
        const size_t mark = stack_.size();
        for (NodeId m = cursor.First(c + 1, scope_end); m != kNullNode;
             m = cursor.First(doc_.BinaryEnd(m), scope_end)) {
          Push(m, q);
        }
        std::reverse(stack_.begin() + mark, stack_.end());
        return;
      }
      case StateJumpInfo::kLeftPath: {
        if (info.essential.Contains(doc_.label(c))) {
          Push(c, q);
          return;
        }
        ++result_->stats.jumps;
        NodeId m = index_.LeftPathFirst(c, info.essential);
        if (m != kNullNode) Push(m, q);
        return;
      }
      case StateJumpInfo::kRightPath: {
        if (info.essential.Contains(doc_.label(c))) {
          Push(c, q);
          return;
        }
        ++result_->stats.jumps;
        NodeId m = index_.RightPathFirst(c, info.essential);
        if (m != kNullNode) Push(m, q);
        return;
      }
    }
  }

  void Push(NodeId n, StateId q) { stack_.emplace_back(n, q); }

  /// td_jump_rec body for one node.
  void Visit(NodeId n, StateId q) {
    result_->states[n] = q;
    result_->visited.push_back(n);
    ++result_->stats.nodes_visited;
    if (monitor_.Charge()) {
      stack_.clear();  // drain the work list; Run() reports the stop code
      return;
    }
    if (sta_.Selects(q, doc_.label(n))) result_->selected.push_back(n);
    auto [q1, q2] = sta_.Destination(q, doc_.label(n));
    if (q1 == sink_ || q2 == sink_) {
      failed_ = true;
      return;
    }
    NodeId left = doc_.Left(n);
    NodeId right = doc_.Right(n);
    // Push right first so the left subtree is processed first.
    if (right == kNullNode) {
      if (!sta_.IsBottom(q2)) failed_ = true;
    } else {
      EnterChild(right, q2);
    }
    if (failed_) return;
    if (left == kNullNode) {
      if (!sta_.IsBottom(q1)) failed_ = true;
    } else {
      EnterChild(left, q1);
    }
  }

  const Sta& sta_;
  const TreeView& doc_;
  const TreeIndex& index_;
  JumpRunOptions options_;
  std::vector<StateJumpInfo> infos_;
  StateId sink_;
  std::vector<std::pair<NodeId, StateId>> stack_;
  JumpRunResult* result_ = nullptr;
  ExecMonitor monitor_;
  bool failed_ = false;
};

}  // namespace

JumpRunResult TopDownJumpRun(const Sta& sta, const Document& doc,
                             const TreeIndex& index,
                             const JumpRunOptions& options) {
  PointerTreeView view{&doc};
  return JumpRunner<PointerTreeView>(sta, view, index, options).Run();
}

JumpRunResult TopDownJumpRun(const Sta& sta, const SuccinctTree& tree,
                             const TreeIndex& index,
                             const JumpRunOptions& options) {
  SuccinctTreeView view{&tree};
  return JumpRunner<SuccinctTreeView>(sta, view, index, options).Run();
}

}  // namespace xpwqo
