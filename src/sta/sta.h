// Selecting tree automata (Definition 2.1): A = (Σ, Q, T, B, S, δ) over
// binary trees. Transitions are tuples (q, L, q1, q2) with L a LabelSet;
// read top-down, a node in state q with label in L sends its binary children
// to q1 and q2. The selecting configurations S ⊆ Q × Σ are stored per state
// as a LabelSet. The '#' leaves of the paper are the kNullNode children of
// the binary (first-child/next-sibling) view.
#ifndef XPWQO_STA_STA_H_
#define XPWQO_STA_STA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tree/alphabet.h"
#include "tree/label_set.h"
#include "tree/types.h"

namespace xpwqo {

using StateId = int32_t;
inline constexpr StateId kNoState = -1;

/// A label id that stands for "any label not mentioned by this automaton".
/// LabelSet treats it like any unknown id: co-finite sets contain it,
/// finite sets do not, which is exactly the required semantics.
inline constexpr LabelId kOtherLabel = -2;

/// One transition (q, L, q1, q2) ∈ δ.
struct StaTransition {
  StateId from;
  LabelSet labels;
  StateId to1;
  StateId to2;
};

/// A selecting tree automaton.
class Sta {
 public:
  /// Creates an automaton with `num_states` states and no transitions.
  explicit Sta(int num_states = 0) : sel_labels_(num_states) {}

  int num_states() const { return static_cast<int>(sel_labels_.size()); }

  /// Adds a fresh state; returns its id.
  StateId AddState();

  /// Adds transition q, L -> (q1, q2).
  void AddTransition(StateId q, LabelSet labels, StateId q1, StateId q2);

  /// Declares (q, l) ∈ S for every l in `labels` (the paper's ⇒ notation
  /// when paired with a matching transition).
  void AddSelecting(StateId q, const LabelSet& labels);

  void AddTop(StateId q);
  void AddBottom(StateId q);

  const std::vector<StateId>& tops() const { return tops_; }
  const std::vector<StateId>& bottoms() const { return bottoms_; }
  bool IsTop(StateId q) const;
  bool IsBottom(StateId q) const;

  const std::vector<StaTransition>& transitions() const {
    return transitions_;
  }

  /// Labels on which q selects (S restricted to q).
  const LabelSet& SelectingLabels(StateId q) const { return sel_labels_[q]; }
  bool Selects(StateId q, LabelId l) const {
    return sel_labels_[q].Contains(l);
  }

  /// δ(q, l): all destination pairs (Definition after 2.1).
  std::vector<std::pair<StateId, StateId>> Destinations(StateId q,
                                                        LabelId l) const;
  /// δ(q1, q2, l): all source states.
  std::vector<StateId> Sources(StateId q1, StateId q2, LabelId l) const;

  /// The unique destination pair; requires top-down determinism+completeness
  /// for (q, l).
  std::pair<StateId, StateId> Destination(StateId q, LabelId l) const;
  /// The unique source state; requires bottom-up determinism+completeness.
  StateId Source(StateId q1, StateId q2, LabelId l) const;

  /// Every label mentioned positively or negatively by any transition or
  /// selecting configuration, plus kOtherLabel as the representative of all
  /// remaining labels. Automaton algorithms that quantify over Σ iterate
  /// over this set.
  std::vector<LabelId> EffectiveAlphabet() const;

  /// Determinism and completeness (Definitions in §2). The checks quantify
  /// over the effective alphabet.
  bool IsTopDownDeterministic() const;
  bool IsBottomUpDeterministic() const;
  bool IsTopDownComplete() const;
  bool IsBottomUpComplete() const;

  /// Adds a sink state (if needed) and transitions so that δ(q, l) is
  /// non-empty for every q, l. Returns the sink used (an existing one if the
  /// automaton was already complete in a way that exposes one, else new).
  StateId MakeTopDownComplete();

  /// Non-changing state (Definition 2.4): δ(q, l) = {(q, q)} for all l.
  bool IsNonChanging(StateId q) const;
  /// q is non-changing, in B, and never selects: skipped subtrees under it
  /// are accepted silently (top-down universal).
  bool IsTopDownUniversal(StateId q) const;
  /// q is non-changing, not in B: no tree below it can be accepted.
  bool IsTopDownSink(StateId q) const;

  /// States reachable from `from` through transitions (Definition A.1).
  std::vector<StateId> ReachableFrom(const std::vector<StateId>& from) const;

  /// The restriction A[q1...qn] (Definition A.2): T replaced by the given
  /// states, everything else restricted to what they reach.
  Sta Restrict(const std::vector<StateId>& new_tops) const;

  /// Human-readable dump; label names resolved through `alphabet`.
  std::string ToString(const Alphabet& alphabet) const;

 private:
  std::vector<StaTransition> transitions_;
  std::vector<StateId> tops_;     // sorted
  std::vector<StateId> bottoms_;  // sorted
  std::vector<LabelSet> sel_labels_;
};

}  // namespace xpwqo

#endif  // XPWQO_STA_STA_H_
