// Bottom-up evaluation of BDSTAs.
//
// BottomUpListRun is the literal Algorithm B.2: a shift-reduce pass over the
// sequence of '#' leaves of the binary tree, repeatedly replacing two
// sibling items by their parent.
//
// BottomUpSkipRun is our take on the paper's (unstated) bottomup_jump: a
// bottom-up run that skips every binary subtree containing no state-changing
// label — such a subtree provably reduces to the initial state q0 — using a
// label-index range probe. The paper only asserts the existence of the full
// jumping algorithm (§3.2) and notes its own index lacks efficient ancestor
// jumps; we make the same simplification and document it in DESIGN.md. Tests
// assert correctness (computed states equal the full run on visited nodes)
// and that the visited set shrinks, not Theorem 3.2 optimality.
#ifndef XPWQO_STA_BOTTOMUP_H_
#define XPWQO_STA_BOTTOMUP_H_

#include "index/tree_index.h"
#include "sta/run.h"
#include "sta/topdown_jump.h"

namespace xpwqo {

/// Literal Algorithm B.2 (shift-reduce over the leaf sequence). Requires a
/// bottom-up deterministic, bottom-up complete STA.
StaRunResult BottomUpListRun(const Sta& sta, const Document& doc);

/// Bottom-up run with subtree skipping. Requires bottom-up determinism and
/// completeness. Skipped nodes keep kNoState in `states` (their run value is
/// the initial state q0).
JumpRunResult BottomUpSkipRun(const Sta& sta, const Document& doc,
                              const TreeIndex& index);

/// The labels that can change the all-q0 fixpoint: l with δ(q0,q0,l) ≠ q0,
/// plus the labels q0 selects on. Subtrees without these labels reduce to q0
/// and can be skipped. Co-finite results disable skipping.
LabelSet BottomUpEssentialLabels(const Sta& sta);

}  // namespace xpwqo

#endif  // XPWQO_STA_BOTTOMUP_H_
