#include "sta/minimize.h"

#include <algorithm>
#include <map>
#include <set>

#include "util/check.h"

namespace xpwqo {
namespace {

/// Groups the effective-alphabet labels of `sigma` by their (already
/// computed) destination keys and emits one LabelSet per group. A group
/// containing kOtherLabel becomes the co-finite set excluding all concrete
/// labels that belong to other groups.
template <typename Key>
std::vector<std::pair<Key, LabelSet>> GroupLabels(
    const std::vector<LabelId>& sigma, const std::vector<Key>& key_of) {
  std::map<Key, std::vector<LabelId>> groups;
  for (size_t i = 0; i < sigma.size(); ++i) {
    groups[key_of[i]].push_back(sigma[i]);
  }
  std::vector<std::pair<Key, LabelSet>> out;
  for (auto& [key, labels] : groups) {
    bool has_other = false;
    std::vector<LabelId> concrete;
    for (LabelId l : labels) {
      if (l == kOtherLabel) {
        has_other = true;
      } else {
        concrete.push_back(l);
      }
    }
    if (!has_other) {
      out.emplace_back(key, LabelSet::Of(std::move(concrete)));
    } else {
      std::vector<LabelId> excluded;
      for (LabelId l : sigma) {
        if (l != kOtherLabel &&
            !std::binary_search(concrete.begin(), concrete.end(), l)) {
          // concrete is sorted because sigma is sorted.
          excluded.push_back(l);
        }
      }
      out.emplace_back(key, LabelSet::AllExcept(std::move(excluded)));
    }
  }
  return out;
}

/// Initial partition: by (final-state membership, selecting labels). The
/// `finals` flag vector marks B (for TDSTA) or T (for BDSTA).
std::vector<int> InitialPartition(const Sta& sta,
                                  const std::vector<bool>& finals,
                                  int* num_classes) {
  std::map<std::pair<bool, std::vector<LabelId>>, int> keys;
  // Selecting label sets compare by representation; canonical because
  // LabelSet stores sorted unique labels plus the negation flag encoded via
  // a leading sentinel below.
  std::vector<int> cls(sta.num_states());
  for (StateId q = 0; q < sta.num_states(); ++q) {
    std::vector<LabelId> sel_key = sta.SelectingLabels(q).Mentioned();
    sel_key.insert(sel_key.begin(),
                   sta.SelectingLabels(q).IsFinite() ? 0 : 1);
    auto [it, inserted] = keys.emplace(
        std::make_pair(finals[q], std::move(sel_key)),
        static_cast<int>(keys.size()));
    cls[q] = it->second;
  }
  *num_classes = static_cast<int>(keys.size());
  return cls;
}

}  // namespace

Sta MinimizeTopDown(const Sta& sta_in) {
  XPWQO_CHECK(sta_in.IsTopDownDeterministic());
  XPWQO_CHECK(sta_in.IsTopDownComplete());
  Sta sta = sta_in.Restrict(sta_in.tops());
  const std::vector<LabelId> sigma = sta.EffectiveAlphabet();
  const int nq = sta.num_states();

  // Cache δ(q, l) per state and alphabet position.
  std::vector<std::vector<std::pair<StateId, StateId>>> dest(
      nq, std::vector<std::pair<StateId, StateId>>(sigma.size()));
  for (StateId q = 0; q < nq; ++q) {
    for (size_t i = 0; i < sigma.size(); ++i) {
      dest[q][i] = sta.Destination(q, sigma[i]);
    }
  }

  std::vector<bool> finals(nq);
  for (StateId q = 0; q < nq; ++q) finals[q] = sta.IsBottom(q);
  int num_classes = 0;
  std::vector<int> cls = InitialPartition(sta, finals, &num_classes);

  // Moore refinement to the coarsest bisimulation.
  while (true) {
    std::map<std::vector<int>, int> sig_to_class;
    std::vector<int> next(nq);
    for (StateId q = 0; q < nq; ++q) {
      std::vector<int> sig;
      sig.reserve(1 + 2 * sigma.size());
      sig.push_back(cls[q]);
      for (size_t i = 0; i < sigma.size(); ++i) {
        sig.push_back(cls[dest[q][i].first]);
        sig.push_back(cls[dest[q][i].second]);
      }
      auto [it, inserted] =
          sig_to_class.emplace(std::move(sig), static_cast<int>(sig_to_class.size()));
      next[q] = it->second;
    }
    int next_count = static_cast<int>(sig_to_class.size());
    if (next_count == num_classes) break;
    cls = std::move(next);
    num_classes = next_count;
  }

  // Quotient automaton.
  Sta out(num_classes);
  std::vector<StateId> rep(num_classes, kNoState);
  for (StateId q = 0; q < nq; ++q) {
    if (rep[cls[q]] == kNoState) rep[cls[q]] = q;
  }
  out.AddTop(cls[sta.tops()[0]]);
  for (int c = 0; c < num_classes; ++c) {
    if (sta.IsBottom(rep[c])) out.AddBottom(c);
    out.AddSelecting(c, sta.SelectingLabels(rep[c]));
    std::vector<std::pair<int, int>> keys(sigma.size());
    for (size_t i = 0; i < sigma.size(); ++i) {
      keys[i] = {cls[dest[rep[c]][i].first], cls[dest[rep[c]][i].second]};
    }
    for (auto& [key, labels] : GroupLabels(sigma, keys)) {
      out.AddTransition(c, labels, key.first, key.second);
    }
  }
  return out;
}

Sta MinimizeBottomUp(const Sta& sta_in) {
  XPWQO_CHECK(sta_in.IsBottomUpDeterministic());
  XPWQO_CHECK(sta_in.IsBottomUpComplete());
  const std::vector<LabelId> sigma = sta_in.EffectiveAlphabet();

  // Bottom-up reachability from b0.
  const int nq_in = sta_in.num_states();
  std::vector<bool> reach(nq_in, false);
  reach[sta_in.bottoms()[0]] = true;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const StaTransition& t : sta_in.transitions()) {
      if (reach[t.to1] && reach[t.to2] && !reach[t.from]) {
        reach[t.from] = true;
        changed = true;
      }
    }
  }
  std::vector<StateId> keep;
  for (StateId q = 0; q < nq_in; ++q) {
    if (reach[q]) keep.push_back(q);
  }
  std::vector<StateId> remap(nq_in, kNoState);
  for (size_t i = 0; i < keep.size(); ++i) {
    remap[keep[i]] = static_cast<StateId>(i);
  }
  Sta sta(static_cast<int>(keep.size()));
  sta.AddBottom(remap[sta_in.bottoms()[0]]);
  for (StateId q : sta_in.tops()) {
    if (remap[q] != kNoState) sta.AddTop(remap[q]);
  }
  for (size_t i = 0; i < keep.size(); ++i) {
    sta.AddSelecting(static_cast<StateId>(i),
                     sta_in.SelectingLabels(keep[i]));
  }
  for (const StaTransition& t : sta_in.transitions()) {
    if (remap[t.from] != kNoState && remap[t.to1] != kNoState &&
        remap[t.to2] != kNoState) {
      sta.AddTransition(remap[t.from], t.labels, remap[t.to1], remap[t.to2]);
    }
  }
  const int nq = sta.num_states();

  // Cache δ(q1, q2, l) -> q.
  auto idx = [&](StateId q1, StateId q2, size_t li) {
    return (static_cast<size_t>(q1) * nq + q2) * sigma.size() + li;
  };
  std::vector<StateId> src(static_cast<size_t>(nq) * nq * sigma.size());
  for (StateId q1 = 0; q1 < nq; ++q1) {
    for (StateId q2 = 0; q2 < nq; ++q2) {
      for (size_t i = 0; i < sigma.size(); ++i) {
        src[idx(q1, q2, i)] = sta.Source(q1, q2, sigma[i]);
      }
    }
  }

  std::vector<bool> finals(nq);
  for (StateId q = 0; q < nq; ++q) finals[q] = sta.IsTop(q);
  int num_classes = 0;
  std::vector<int> cls = InitialPartition(sta, finals, &num_classes);

  while (true) {
    std::map<std::vector<int>, int> sig_to_class;
    std::vector<int> next(nq);
    for (StateId q = 0; q < nq; ++q) {
      std::vector<int> sig;
      sig.push_back(cls[q]);
      for (StateId r = 0; r < nq; ++r) {
        for (size_t i = 0; i < sigma.size(); ++i) {
          sig.push_back(cls[src[idx(q, r, i)]]);
          sig.push_back(cls[src[idx(r, q, i)]]);
        }
      }
      auto [it, inserted] = sig_to_class.emplace(
          std::move(sig), static_cast<int>(sig_to_class.size()));
      next[q] = it->second;
    }
    int next_count = static_cast<int>(sig_to_class.size());
    if (next_count == num_classes) break;
    cls = std::move(next);
    num_classes = next_count;
  }

  Sta out(num_classes);
  std::vector<StateId> rep(num_classes, kNoState);
  for (StateId q = 0; q < nq; ++q) {
    if (rep[cls[q]] == kNoState) rep[cls[q]] = q;
  }
  out.AddBottom(cls[sta.bottoms()[0]]);
  for (int c = 0; c < num_classes; ++c) {
    if (sta.IsTop(rep[c])) out.AddTop(c);
    out.AddSelecting(c, sta.SelectingLabels(rep[c]));
  }
  // Transitions: one per (class1, class2) pair, labels grouped by source
  // class.
  for (int c1 = 0; c1 < num_classes; ++c1) {
    for (int c2 = 0; c2 < num_classes; ++c2) {
      std::vector<int> keys(sigma.size());
      for (size_t i = 0; i < sigma.size(); ++i) {
        keys[i] = cls[src[idx(rep[c1], rep[c2], i)]];
      }
      for (auto& [key, labels] : GroupLabels(sigma, keys)) {
        out.AddTransition(key, labels, c1, c2);
      }
    }
  }
  return out;
}

bool IsomorphicTopDown(const Sta& a, const Sta& b) {
  if (a.num_states() != b.num_states()) return false;
  if (a.tops().size() != 1 || b.tops().size() != 1) return false;
  // Merge the effective alphabets so both automata are probed identically.
  std::set<LabelId> merged;
  for (LabelId l : a.EffectiveAlphabet()) merged.insert(l);
  for (LabelId l : b.EffectiveAlphabet()) merged.insert(l);
  std::vector<LabelId> sigma(merged.begin(), merged.end());

  std::vector<StateId> map_ab(a.num_states(), kNoState);
  std::vector<StateId> map_ba(b.num_states(), kNoState);
  std::vector<std::pair<StateId, StateId>> queue;
  auto pair_up = [&](StateId qa, StateId qb) {
    if (map_ab[qa] == kNoState && map_ba[qb] == kNoState) {
      map_ab[qa] = qb;
      map_ba[qb] = qa;
      queue.emplace_back(qa, qb);
      return true;
    }
    return map_ab[qa] == qb && map_ba[qb] == qa;
  };
  if (!pair_up(a.tops()[0], b.tops()[0])) return false;
  for (size_t i = 0; i < queue.size(); ++i) {
    auto [qa, qb] = queue[i];
    if (a.IsBottom(qa) != b.IsBottom(qb)) return false;
    for (LabelId l : sigma) {
      if (a.Selects(qa, l) != b.Selects(qb, l)) return false;
      auto da = a.Destinations(qa, l);
      auto db = b.Destinations(qb, l);
      if (da.size() != 1 || db.size() != 1) return false;
      if (!pair_up(da[0].first, db[0].first)) return false;
      if (!pair_up(da[0].second, db[0].second)) return false;
    }
  }
  return true;
}

}  // namespace xpwqo
