#include "sta/run.h"

#include <algorithm>

#include "util/check.h"

namespace xpwqo {
namespace {

/// Dense state-set representation for the oracle passes.
using StateMaskVec = std::vector<bool>;

bool AnyIntersection(const StateMaskVec& mask, const std::vector<StateId>& v) {
  for (StateId q : v) {
    if (mask[q]) return true;
  }
  return false;
}

}  // namespace

StaRunResult TopDownRun(const Sta& sta, const Document& doc) {
  XPWQO_CHECK(sta.tops().size() == 1);
  StaRunResult out;
  out.states.assign(doc.num_nodes(), kNoState);
  out.accepting = true;
  // Assign states in preorder; both binary children of node n have larger
  // ids, so a single forward sweep suffices once the root is seeded.
  out.states[doc.root()] = sta.tops()[0];
  for (NodeId n = 0; n < doc.num_nodes() && out.accepting; ++n) {
    StateId q = out.states[n];
    XPWQO_CHECK(q != kNoState);  // guaranteed by preorder sweep
    auto dests = sta.Destinations(q, doc.label(n));
    XPWQO_CHECK(dests.size() == 1);  // deterministic + complete
    auto [q1, q2] = dests[0];
    NodeId left = doc.BinaryLeft(n);
    NodeId right = doc.BinaryRight(n);
    if (left == kNullNode) {
      if (!sta.IsBottom(q1)) out.accepting = false;
    } else {
      out.states[left] = q1;
    }
    if (right == kNullNode) {
      if (!sta.IsBottom(q2)) out.accepting = false;
    } else {
      out.states[right] = q2;
    }
  }
  if (!out.accepting) {
    out.states.assign(doc.num_nodes(), kNoState);
    return out;
  }
  for (NodeId n = 0; n < doc.num_nodes(); ++n) {
    if (sta.Selects(out.states[n], doc.label(n))) out.selected.push_back(n);
  }
  return out;
}

StaRunResult BottomUpRun(const Sta& sta, const Document& doc) {
  XPWQO_CHECK(sta.bottoms().size() == 1);
  const StateId b0 = sta.bottoms()[0];
  StaRunResult out;
  out.states.assign(doc.num_nodes(), kNoState);
  // Both binary children of n have larger preorder ids: a reverse sweep is a
  // valid bottom-up evaluation order.
  for (NodeId n = doc.num_nodes() - 1; n >= 0; --n) {
    NodeId left = doc.BinaryLeft(n);
    NodeId right = doc.BinaryRight(n);
    StateId q1 = left == kNullNode ? b0 : out.states[left];
    StateId q2 = right == kNullNode ? b0 : out.states[right];
    auto sources = sta.Sources(q1, q2, doc.label(n));
    XPWQO_CHECK(sources.size() == 1);  // deterministic + complete
    out.states[n] = sources[0];
  }
  out.accepting = sta.IsTop(out.states[doc.root()]);
  if (!out.accepting) {
    out.states.assign(doc.num_nodes(), kNoState);
    return out;
  }
  for (NodeId n = 0; n < doc.num_nodes(); ++n) {
    if (sta.Selects(out.states[n], doc.label(n))) out.selected.push_back(n);
  }
  return out;
}

StaOracleResult OracleRun(const Sta& sta, const Document& doc) {
  const int nq = sta.num_states();
  const int32_t nn = doc.num_nodes();
  StaOracleResult out;
  if (nn == 0) return out;

  // Bottom-up possibility sets D(n) = states labelling n in some run of the
  // subtree semantics; '#' children admit exactly the states of B.
  StateMaskVec leaf_mask(nq, false);
  for (StateId q : sta.bottoms()) leaf_mask[q] = true;
  std::vector<StateMaskVec> down(nn, StateMaskVec(nq, false));
  for (NodeId n = nn - 1; n >= 0; --n) {
    NodeId left = doc.BinaryLeft(n);
    NodeId right = doc.BinaryRight(n);
    const StateMaskVec& d1 = left == kNullNode ? leaf_mask : down[left];
    const StateMaskVec& d2 = right == kNullNode ? leaf_mask : down[right];
    for (const StaTransition& t : sta.transitions()) {
      if (t.labels.Contains(doc.label(n)) && d1[t.to1] && d2[t.to2]) {
        down[n][t.from] = true;
      }
    }
  }
  out.accepts = AnyIntersection(down[doc.root()], sta.tops());
  if (!out.accepts) return out;

  // Top-down usefulness filter U(n): states at n that occur in at least one
  // accepting run.
  std::vector<StateMaskVec> up(nn, StateMaskVec(nq, false));
  for (StateId q : sta.tops()) {
    if (down[doc.root()][q]) up[doc.root()][q] = true;
  }
  for (NodeId n = 0; n < nn; ++n) {
    NodeId left = doc.BinaryLeft(n);
    NodeId right = doc.BinaryRight(n);
    const StateMaskVec& d1 = left == kNullNode ? leaf_mask : down[left];
    const StateMaskVec& d2 = right == kNullNode ? leaf_mask : down[right];
    for (const StaTransition& t : sta.transitions()) {
      if (!up[n][t.from] || !t.labels.Contains(doc.label(n))) continue;
      if (!d1[t.to1] || !d2[t.to2]) continue;
      if (left != kNullNode) up[left][t.to1] = true;
      if (right != kNullNode) up[right][t.to2] = true;
    }
  }
  for (NodeId n = 0; n < nn; ++n) {
    for (StateId q = 0; q < nq; ++q) {
      if (up[n][q] && sta.Selects(q, doc.label(n))) {
        out.selected.push_back(n);
        break;
      }
    }
  }
  return out;
}

bool AgreeOn(const Sta& a, const Sta& b, const Document& doc) {
  StaOracleResult ra = OracleRun(a, doc);
  StaOracleResult rb = OracleRun(b, doc);
  return ra.accepts == rb.accepts && ra.selected == rb.selected;
}

}  // namespace xpwqo
