#include "sta/relevance.h"

#include "util/check.h"

namespace xpwqo {

StateId FindTopDownUniversal(const Sta& sta) {
  for (StateId q = 0; q < sta.num_states(); ++q) {
    if (sta.IsTopDownUniversal(q)) return q;
  }
  return kNoState;
}

StateId FindTopDownSink(const Sta& sta) {
  for (StateId q = 0; q < sta.num_states(); ++q) {
    if (sta.IsTopDownSink(q)) return q;
  }
  return kNoState;
}

StateId FindBottomUpUniversal(const Sta& sta) {
  for (StateId q = 0; q < sta.num_states(); ++q) {
    if (sta.IsNonChanging(q) && sta.IsTop(q) &&
        sta.SelectingLabels(q).IsEmpty()) {
      return q;
    }
  }
  return kNoState;
}

std::vector<NodeId> TopDownRelevantNodes(const Sta& sta, const Document& doc,
                                         const std::vector<StateId>& states) {
  XPWQO_CHECK(states.size() == static_cast<size_t>(doc.num_nodes()));
  const StateId top = FindTopDownUniversal(sta);
  std::vector<NodeId> out;
  for (NodeId n = 0; n < doc.num_nodes(); ++n) {
    StateId q = states[n];
    if (sta.Selects(q, doc.label(n))) {
      out.push_back(n);
      continue;
    }
    // The run assigns states to the '#' children too; recompute them from
    // the unique transition.
    auto [q1, q2] = sta.Destination(q, doc.label(n));
    bool skip = (q == q1 && q == q2) || (q == q1 && q2 == top) ||
                (q == q2 && q1 == top);
    if (!skip) out.push_back(n);
  }
  return out;
}

std::vector<NodeId> BottomUpRelevantNodes(const Sta& sta, const Document& doc,
                                          const std::vector<StateId>& states) {
  XPWQO_CHECK(states.size() == static_cast<size_t>(doc.num_nodes()));
  XPWQO_CHECK(sta.bottoms().size() == 1);
  const StateId q0 = sta.bottoms()[0];
  const StateId top = FindBottomUpUniversal(sta);
  std::vector<NodeId> out;
  auto child_state = [&](NodeId c) { return c == kNullNode ? q0 : states[c]; };
  for (NodeId n = 0; n < doc.num_nodes(); ++n) {
    StateId q = states[n];
    if (sta.Selects(q, doc.label(n))) {
      out.push_back(n);
      continue;
    }
    StateId q1 = child_state(doc.BinaryLeft(n));
    StateId q2 = child_state(doc.BinaryRight(n));
    auto ignorable = [&](StateId r) { return r == q0 || r == top; };
    bool skip = (q == top) || (q == q1 && q == q2) ||
                (q == q1 && ignorable(q2)) || (q == q2 && ignorable(q1));
    if (!skip) out.push_back(n);
  }
  return out;
}

}  // namespace xpwqo
