// The recognizer encoding of Appendix A.1: an STA A over Σ becomes an
// ordinary tree automaton Â over Σ ∪ Σ̂ where selecting a node with label l
// is encoded as accepting the hatted label l̂ at that node. Minimizing Â with
// the standard algorithm and decoding back (Lemma A.3) yields the minimal
// STA; we use this as a cross-validation of the direct algorithms in
// minimize.h.
//
// The encoding requires an explicit finite alphabet: co-finite label sets of
// an STA over an unbounded Σ cannot be complemented against Σ ∪ Σ̂ in finite
// form. ExpandOverAlphabet closes an automaton over a given label list first.
#ifndef XPWQO_STA_RECOGNIZER_H_
#define XPWQO_STA_RECOGNIZER_H_

#include <vector>

#include "sta/sta.h"

namespace xpwqo {

/// Maps plain labels to their hatted counterparts (parallel vectors).
struct HatMap {
  std::vector<LabelId> plain;  // sorted
  std::vector<LabelId> hat;    // hat[i] is the hat of plain[i]

  LabelId HatOf(LabelId l) const;
  /// kNoLabel if `l` is not a hat label.
  LabelId PlainOf(LabelId l) const;
  bool IsHat(LabelId l) const { return PlainOf(l) != kNoLabel; }
};

/// Rewrites every (possibly co-finite) label set of `sta` as an explicit
/// finite set over `sigma`. All concrete labels mentioned by the automaton
/// must be in `sigma`.
Sta ExpandOverAlphabet(const Sta& sta, const std::vector<LabelId>& sigma);

/// Builds the recognizer Â of an expanded automaton. `hats` supplies fresh
/// label ids for the hatted alphabet (hats.plain must equal the alphabet the
/// automaton was expanded over). The result has empty S; transitions over a
/// hat label l̂ replicate the (q, l) transitions with (q, l) ∈ S.
Sta EncodeRecognizer(const Sta& sta, const HatMap& hats);

/// Inverse of EncodeRecognizer for selecting-unambiguous recognizers
/// (Lemma A.3): hat transitions become selecting configurations.
Sta DecodeRecognizer(const Sta& recognizer, const HatMap& hats);

/// Checks selecting-unambiguity structurally for deterministic recognizers:
/// no reachable state may accept both σ(t1,t2) and σ̂(t1,t2). For a
/// deterministic TDTA this reduces to: no state has, for any σ, both the σ
/// and σ̂ transition leading to non-sink pairs with overlapping languages.
/// We check the sampled-tree version used by the tests instead; this
/// function performs the cheap structural necessary condition.
bool LooksSelectingUnambiguous(const Sta& recognizer, const HatMap& hats);

/// Convenience: minimal TDSTA computed via the recognizer route
/// (expand -> encode -> minimize -> decode).
Sta MinimizeTopDownViaRecognizer(const Sta& sta,
                                 const std::vector<LabelId>& sigma,
                                 const HatMap& hats);

}  // namespace xpwqo

#endif  // XPWQO_STA_RECOGNIZER_H_
