#include "sta/recognizer.h"

#include <algorithm>

#include "sta/minimize.h"
#include "util/check.h"

namespace xpwqo {

LabelId HatMap::HatOf(LabelId l) const {
  auto it = std::lower_bound(plain.begin(), plain.end(), l);
  XPWQO_CHECK(it != plain.end() && *it == l);
  return hat[it - plain.begin()];
}

LabelId HatMap::PlainOf(LabelId l) const {
  for (size_t i = 0; i < hat.size(); ++i) {
    if (hat[i] == l) return plain[i];
  }
  return kNoLabel;
}

Sta ExpandOverAlphabet(const Sta& sta, const std::vector<LabelId>& sigma) {
  LabelSet sigma_set = LabelSet::Of(sigma);
  Sta out(sta.num_states());
  for (StateId q : sta.tops()) out.AddTop(q);
  for (StateId q : sta.bottoms()) out.AddBottom(q);
  for (StateId q = 0; q < sta.num_states(); ++q) {
    // Concrete labels mentioned anywhere must all belong to sigma.
    for (LabelId l : sta.SelectingLabels(q).Mentioned()) {
      XPWQO_CHECK(sigma_set.Contains(l) ||
                  !sta.SelectingLabels(q).IsFinite());
    }
    out.AddSelecting(q, sta.SelectingLabels(q).Intersect(sigma_set));
  }
  for (const StaTransition& t : sta.transitions()) {
    LabelSet expanded = t.labels.Intersect(sigma_set);
    if (!expanded.IsEmpty()) {
      out.AddTransition(t.from, expanded, t.to1, t.to2);
    }
  }
  return out;
}

Sta EncodeRecognizer(const Sta& sta, const HatMap& hats) {
  Sta out(sta.num_states());
  for (StateId q : sta.tops()) out.AddTop(q);
  for (StateId q : sta.bottoms()) out.AddBottom(q);
  for (const StaTransition& t : sta.transitions()) {
    XPWQO_CHECK(t.labels.IsFinite());  // expand first
    const LabelSet& sel = sta.SelectingLabels(t.from);
    std::vector<LabelId> plain_labels, hat_labels;
    for (LabelId l : t.labels.FiniteMembers()) {
      if (sel.Contains(l)) {
        hat_labels.push_back(hats.HatOf(l));
      } else {
        plain_labels.push_back(l);
      }
    }
    if (!plain_labels.empty()) {
      out.AddTransition(t.from, LabelSet::Of(std::move(plain_labels)), t.to1,
                        t.to2);
    }
    if (!hat_labels.empty()) {
      out.AddTransition(t.from, LabelSet::Of(std::move(hat_labels)), t.to1,
                        t.to2);
    }
  }
  return out;  // S is empty: a pure recognizer
}

Sta DecodeRecognizer(const Sta& recognizer, const HatMap& hats) {
  // Per Lemma A.3: transitions into a sink state are dropped (the selecting
  // automaton does not need the completion sink), hat transitions become
  // selecting configurations, and unreachable states are removed.
  std::vector<bool> is_sink(recognizer.num_states());
  for (StateId q = 0; q < recognizer.num_states(); ++q) {
    is_sink[q] = recognizer.IsTopDownSink(q);
  }
  Sta out(recognizer.num_states());
  for (StateId q : recognizer.tops()) out.AddTop(q);
  for (StateId q : recognizer.bottoms()) out.AddBottom(q);
  for (const StaTransition& t : recognizer.transitions()) {
    if (is_sink[t.to1] || is_sink[t.to2]) continue;
    std::vector<LabelId> plain_labels, unhatted;
    if (t.labels.IsFinite()) {
      for (LabelId l : t.labels.FiniteMembers()) {
        LabelId p = hats.PlainOf(l);
        if (p == kNoLabel) {
          plain_labels.push_back(l);
        } else {
          unhatted.push_back(p);
        }
      }
    } else {
      // Co-finite sets can only arise from completion transitions, which
      // never select; carve out the hat labels and keep the rest verbatim.
      LabelSet plain_side = t.labels.Minus(LabelSet::Of(hats.hat));
      if (!plain_side.IsEmpty()) {
        out.AddTransition(t.from, plain_side, t.to1, t.to2);
      }
      for (size_t i = 0; i < hats.hat.size(); ++i) {
        if (t.labels.Contains(hats.hat[i])) unhatted.push_back(hats.plain[i]);
      }
    }
    if (!plain_labels.empty()) {
      out.AddTransition(t.from, LabelSet::Of(std::move(plain_labels)), t.to1,
                        t.to2);
    }
    if (!unhatted.empty()) {
      LabelSet set = LabelSet::Of(std::move(unhatted));
      out.AddTransition(t.from, set, t.to1, t.to2);
      out.AddSelecting(t.from, set);
    }
  }
  return out.Restrict(out.tops());
}

bool LooksSelectingUnambiguous(const Sta& recognizer, const HatMap& hats) {
  // Necessary condition: no state maps σ and σ̂ to the same destination pair
  // while both destinations can accept something. (Lemma A.2 guarantees the
  // full property for encodings of complete automata; the tests verify the
  // semantic property on sampled trees.)
  for (StateId q = 0; q < recognizer.num_states(); ++q) {
    for (size_t i = 0; i < hats.plain.size(); ++i) {
      auto d_plain = recognizer.Destinations(q, hats.plain[i]);
      auto d_hat = recognizer.Destinations(q, hats.hat[i]);
      for (const auto& a : d_plain) {
        for (const auto& b : d_hat) {
          if (a == b && !recognizer.IsTopDownSink(a.first) &&
              !recognizer.IsTopDownSink(a.second)) {
            return false;
          }
        }
      }
    }
  }
  return true;
}

Sta MinimizeTopDownViaRecognizer(const Sta& sta,
                                 const std::vector<LabelId>& sigma,
                                 const HatMap& hats) {
  Sta expanded = ExpandOverAlphabet(sta, sigma);
  Sta recognizer = EncodeRecognizer(expanded, hats);
  recognizer.MakeTopDownComplete();
  Sta minimized = MinimizeTopDown(recognizer);
  return DecodeRecognizer(minimized, hats);
}

}  // namespace xpwqo
