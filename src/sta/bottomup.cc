#include "sta/bottomup.h"

#include <algorithm>

#include "util/check.h"

namespace xpwqo {
namespace {

/// Binary-tree positions for Algorithm B.2: real nodes are their NodeId;
/// the '#' leaf replacing a missing first-child of n is EncodeLeaf(n, 0),
/// a missing next-sibling EncodeLeaf(n, 1).
using BinaryPos = int64_t;

BinaryPos EncodeLeaf(NodeId host, int side, int32_t num_nodes) {
  return static_cast<BinaryPos>(num_nodes) + 2 * host + side;
}
bool IsLeaf(BinaryPos p, int32_t num_nodes) { return p >= num_nodes; }
NodeId LeafHost(BinaryPos p, int32_t num_nodes) {
  return static_cast<NodeId>((p - num_nodes) / 2);
}
int LeafSide(BinaryPos p, int32_t num_nodes) {
  return static_cast<int>((p - num_nodes) % 2);
}

}  // namespace

StaRunResult BottomUpListRun(const Sta& sta, const Document& doc) {
  XPWQO_CHECK(sta.bottoms().size() == 1);
  const StateId q0 = sta.bottoms()[0];
  const int32_t nn = doc.num_nodes();
  StaRunResult out;
  out.states.assign(nn, kNoState);

  // The binary parent of a position: for a real node, its previous sibling
  // if any (it is that sibling's right child), else its XML parent (it is
  // the first child). For a '#' leaf, its host.
  std::vector<NodeId> prev_sibling(nn, kNullNode);
  for (NodeId n = 0; n < nn; ++n) {
    NodeId c = doc.first_child(n);
    NodeId prev = kNullNode;
    for (; c != kNullNode; c = doc.next_sibling(c)) {
      prev_sibling[c] = prev;
      prev = c;
    }
  }
  auto binary_parent = [&](BinaryPos p) -> NodeId {
    if (IsLeaf(p, nn)) return LeafHost(p, nn);
    NodeId n = static_cast<NodeId>(p);
    return prev_sibling[n] != kNullNode ? prev_sibling[n] : doc.parent(n);
  };
  auto is_left_child = [&](BinaryPos p) -> bool {
    if (IsLeaf(p, nn)) return LeafSide(p, nn) == 0;
    return prev_sibling[static_cast<NodeId>(p)] == kNullNode;
  };

  // Sequence of leaves in document (binary pre-) order, via an explicit
  // stack (document depth is unbounded).
  std::vector<BinaryPos> leaves;
  std::vector<BinaryPos> walk{doc.root()};
  while (!walk.empty()) {
    BinaryPos p = walk.back();
    walk.pop_back();
    if (IsLeaf(p, nn)) {
      leaves.push_back(p);
      continue;
    }
    NodeId n = static_cast<NodeId>(p);
    NodeId left = doc.BinaryLeft(n);
    NodeId right = doc.BinaryRight(n);
    walk.push_back(right == kNullNode ? EncodeLeaf(n, 1, nn)
                                      : static_cast<BinaryPos>(right));
    walk.push_back(left == kNullNode ? EncodeLeaf(n, 0, nn)
                                     : static_cast<BinaryPos>(left));
  }

  // Shift-reduce: push items left to right; reduce whenever the two top
  // items are binary siblings. This computes exactly the reductions of
  // Algorithm B.2's recursion.
  std::vector<std::pair<BinaryPos, StateId>> stack;
  for (BinaryPos leaf : leaves) {
    stack.emplace_back(leaf, q0);
    while (stack.size() >= 2) {
      auto [p2, s2] = stack[stack.size() - 1];
      auto [p1, s1] = stack[stack.size() - 2];
      if (!is_left_child(p1) || is_left_child(p2) ||
          binary_parent(p1) != binary_parent(p2)) {
        break;
      }
      NodeId parent = binary_parent(p1);
      StateId q = sta.Source(s1, s2, doc.label(parent));
      out.states[parent] = q;
      stack.pop_back();
      stack.pop_back();
      stack.emplace_back(parent, q);
    }
  }
  XPWQO_CHECK(stack.size() == 1 &&
              stack[0].first == static_cast<BinaryPos>(doc.root()));
  out.accepting = sta.IsTop(stack[0].second);
  if (!out.accepting) {
    out.states.assign(nn, kNoState);
    return out;
  }
  for (NodeId n = 0; n < nn; ++n) {
    if (sta.Selects(out.states[n], doc.label(n))) out.selected.push_back(n);
  }
  return out;
}

LabelSet BottomUpEssentialLabels(const Sta& sta) {
  XPWQO_CHECK(sta.bottoms().size() == 1);
  const StateId q0 = sta.bottoms()[0];
  LabelSet essential = sta.SelectingLabels(q0);
  for (LabelId l : sta.EffectiveAlphabet()) {
    auto sources = sta.Sources(q0, q0, l);
    XPWQO_CHECK(sources.size() == 1);
    if (sources[0] != q0) {
      if (l == kOtherLabel) return LabelSet::All();  // cannot skip anything
      essential = essential.Union(LabelSet::Of({l}));
    }
  }
  return essential;
}

JumpRunResult BottomUpSkipRun(const Sta& sta, const Document& doc,
                              const TreeIndex& index) {
  XPWQO_CHECK(sta.bottoms().size() == 1);
  const StateId q0 = sta.bottoms()[0];
  const LabelSet essential = BottomUpEssentialLabels(sta);
  const bool can_skip = essential.IsFinite();
  JumpRunResult out;
  out.states.assign(doc.num_nodes(), kNoState);

  // Reverse-preorder sweep, but hop over maximal binary subtrees free of
  // essential labels: [n, BinaryEnd(n)) without essential labels reduces to
  // q0 everywhere.
  auto value_of = [&](NodeId c) -> StateId {
    if (c == kNullNode) return q0;
    return out.states[c] == kNoState ? q0 : out.states[c];
  };
  for (NodeId n = doc.num_nodes() - 1; n >= 0; --n) {
    if (can_skip && out.states[n] == kNoState) {
      // If n starts a maximal skippable region we may leave it unset — but
      // only when the whole binary subtree of n is essential-free.
      if (!index.labels().RangeContainsAny(essential, n, doc.BinaryEnd(n))) {
        continue;  // provably q0; not visited
      }
    }
    StateId q1 = value_of(doc.BinaryLeft(n));
    StateId q2 = value_of(doc.BinaryRight(n));
    out.states[n] = sta.Source(q1, q2, doc.label(n));
    out.visited.push_back(n);
    ++out.stats.nodes_visited;
    if (sta.Selects(out.states[n], doc.label(n))) out.selected.push_back(n);
  }
  std::reverse(out.visited.begin(), out.visited.end());
  std::reverse(out.selected.begin(), out.selected.end());
  out.accepting = sta.IsTop(value_of(doc.root()));
  if (!out.accepting) {
    out = JumpRunResult{};
    out.states.assign(doc.num_nodes(), kNoState);
  }
  return out;
}

}  // namespace xpwqo
