#include "sta/examples.h"

#include "util/check.h"

namespace xpwqo {

Sta StaForDescADescB(LabelId a, LabelId b) {
  Sta sta(2);
  const StateId q0 = 0, q1 = 1;
  sta.AddTop(q0);
  sta.AddBottom(q0);
  sta.AddBottom(q1);
  sta.AddTransition(q0, LabelSet::Of({a}), q1, q0);
  sta.AddTransition(q0, LabelSet::AllExcept({a}), q0, q0);
  sta.AddTransition(q1, LabelSet::Of({b}), q1, q1);
  sta.AddTransition(q1, LabelSet::AllExcept({b}), q1, q1);
  sta.AddSelecting(q1, LabelSet::Of({b}));
  return sta;
}

Sta StaForAWithBDescendant(LabelId a, LabelId b) {
  // Bottom-up reading of δ(left, right, label):
  //   left ∈ {q1, q2}                  -> q1   (b below my first child)
  //   left = q0, label = b             -> q2   (I am the b)
  //   left = q0, label ≠ b, right ≠ q0 -> q2   (b among my following sibs)
  //   left = q0, label ≠ b, right = q0 -> q0
  Sta sta(3);
  const StateId q0 = 0, q1 = 1, q2 = 2;
  sta.AddBottom(q0);
  sta.AddTop(q0);
  sta.AddTop(q1);
  sta.AddTop(q2);
  for (StateId right : {q0, q1, q2}) {
    for (StateId marked_left : {q1, q2}) {
      sta.AddTransition(q1, LabelSet::All(), marked_left, right);
    }
    sta.AddTransition(q2, LabelSet::Of({b}), q0, right);
  }
  for (StateId marked_right : {q1, q2}) {
    sta.AddTransition(q2, LabelSet::AllExcept({b}), q0, marked_right);
  }
  sta.AddTransition(q0, LabelSet::AllExcept({b}), q0, q0);
  sta.AddSelecting(q1, LabelSet::Of({a}));
  return sta;
}

Sta StaDtdRootIsA(LabelId a) {
  Sta sta(3);
  const StateId q0 = 0, q_top = 1, q_sink = 2;
  sta.AddTop(q0);
  sta.AddBottom(q_top);
  sta.AddTransition(q0, LabelSet::Of({a}), q_top, q_top);
  sta.AddTransition(q0, LabelSet::AllExcept({a}), q_sink, q_sink);
  sta.AddTransition(q_top, LabelSet::All(), q_top, q_top);
  sta.AddTransition(q_sink, LabelSet::All(), q_sink, q_sink);
  return sta;
}

Sta StaForChildChain(const std::vector<LabelId>& labels) {
  XPWQO_CHECK(!labels.empty());
  const int k = static_cast<int>(labels.size());
  // States: s0..s_{k-1} are the steps, then q_top, q_sink.
  Sta sta(k + 2);
  const StateId q_top = k, q_sink = k + 1;
  sta.AddTop(0);
  sta.AddBottom(q_top);
  for (StateId s = 1; s < k; ++s) sta.AddBottom(s);
  // Root step: the root must carry labels[0].
  {
    StateId next = (k == 1) ? q_top : 1;
    sta.AddTransition(0, LabelSet::Of({labels[0]}), next, q_top);
    sta.AddTransition(0, LabelSet::AllExcept({labels[0]}), q_sink, q_sink);
    if (k == 1) sta.AddSelecting(0, LabelSet::Of({labels[0]}));
  }
  // Step i (state i scans a sibling list for labels[i]).
  for (StateId s = 1; s < k; ++s) {
    LabelId l = labels[s];
    StateId next = (s == k - 1) ? q_top : s + 1;
    sta.AddTransition(s, LabelSet::Of({l}), next, s);
    sta.AddTransition(s, LabelSet::AllExcept({l}), q_top, s);
    if (s == k - 1) sta.AddSelecting(s, LabelSet::Of({l}));
  }
  sta.AddTransition(q_top, LabelSet::All(), q_top, q_top);
  sta.AddTransition(q_sink, LabelSet::All(), q_sink, q_sink);
  return sta;
}

Sta StaForDescendantChain(const std::vector<LabelId>& labels) {
  XPWQO_CHECK(!labels.empty());
  for (size_t i = 0; i < labels.size(); ++i) {
    for (size_t j = i + 1; j < labels.size(); ++j) {
      XPWQO_CHECK(labels[i] != labels[j]);
    }
  }
  const int k = static_cast<int>(labels.size());
  // State i = "matched labels[0..i-1], searching labels[i] below".
  Sta sta(k);
  sta.AddTop(0);
  for (StateId q = 0; q < k; ++q) sta.AddBottom(q);
  for (StateId q = 0; q + 1 < k; ++q) {
    sta.AddTransition(q, LabelSet::Of({labels[q]}), q + 1, q);
    sta.AddTransition(q, LabelSet::AllExcept({labels[q]}), q, q);
  }
  // Final state selects its label and keeps scanning below/right of it.
  StateId last = k - 1;
  sta.AddTransition(last, LabelSet::All(), last, last);
  sta.AddSelecting(last, LabelSet::Of({labels[last]}));
  return sta;
}

}  // namespace xpwqo
