#include "sta/sta.h"

#include <algorithm>
#include <set>

#include "util/check.h"

namespace xpwqo {
namespace {

void InsertSorted(std::vector<StateId>* v, StateId q) {
  auto it = std::lower_bound(v->begin(), v->end(), q);
  if (it == v->end() || *it != q) v->insert(it, q);
}

bool ContainsSorted(const std::vector<StateId>& v, StateId q) {
  return std::binary_search(v.begin(), v.end(), q);
}

}  // namespace

StateId Sta::AddState() {
  sel_labels_.emplace_back();
  return static_cast<StateId>(sel_labels_.size()) - 1;
}

void Sta::AddTransition(StateId q, LabelSet labels, StateId q1, StateId q2) {
  XPWQO_CHECK(q >= 0 && q < num_states());
  XPWQO_CHECK(q1 >= 0 && q1 < num_states());
  XPWQO_CHECK(q2 >= 0 && q2 < num_states());
  transitions_.push_back({q, std::move(labels), q1, q2});
}

void Sta::AddSelecting(StateId q, const LabelSet& labels) {
  XPWQO_CHECK(q >= 0 && q < num_states());
  sel_labels_[q] = sel_labels_[q].Union(labels);
}

void Sta::AddTop(StateId q) { InsertSorted(&tops_, q); }
void Sta::AddBottom(StateId q) { InsertSorted(&bottoms_, q); }

bool Sta::IsTop(StateId q) const { return ContainsSorted(tops_, q); }
bool Sta::IsBottom(StateId q) const { return ContainsSorted(bottoms_, q); }

std::vector<std::pair<StateId, StateId>> Sta::Destinations(StateId q,
                                                           LabelId l) const {
  std::vector<std::pair<StateId, StateId>> out;
  for (const StaTransition& t : transitions_) {
    if (t.from == q && t.labels.Contains(l)) {
      out.emplace_back(t.to1, t.to2);
    }
  }
  return out;
}

std::vector<StateId> Sta::Sources(StateId q1, StateId q2, LabelId l) const {
  std::vector<StateId> out;
  for (const StaTransition& t : transitions_) {
    if (t.to1 == q1 && t.to2 == q2 && t.labels.Contains(l)) {
      out.push_back(t.from);
    }
  }
  return out;
}

std::pair<StateId, StateId> Sta::Destination(StateId q, LabelId l) const {
  auto dests = Destinations(q, l);
  XPWQO_CHECK(dests.size() == 1);
  return dests[0];
}

StateId Sta::Source(StateId q1, StateId q2, LabelId l) const {
  auto sources = Sources(q1, q2, l);
  XPWQO_CHECK(sources.size() == 1);
  return sources[0];
}

std::vector<LabelId> Sta::EffectiveAlphabet() const {
  std::set<LabelId> labels;
  for (const StaTransition& t : transitions_) {
    for (LabelId l : t.labels.Mentioned()) labels.insert(l);
  }
  for (const LabelSet& s : sel_labels_) {
    for (LabelId l : s.Mentioned()) labels.insert(l);
  }
  labels.insert(kOtherLabel);
  return std::vector<LabelId>(labels.begin(), labels.end());
}

bool Sta::IsTopDownDeterministic() const {
  if (tops_.size() != 1) return false;
  std::vector<LabelId> sigma = EffectiveAlphabet();
  for (StateId q = 0; q < num_states(); ++q) {
    for (LabelId l : sigma) {
      if (Destinations(q, l).size() > 1) return false;
    }
  }
  return true;
}

bool Sta::IsBottomUpDeterministic() const {
  if (bottoms_.size() != 1) return false;
  std::vector<LabelId> sigma = EffectiveAlphabet();
  for (StateId q1 = 0; q1 < num_states(); ++q1) {
    for (StateId q2 = 0; q2 < num_states(); ++q2) {
      for (LabelId l : sigma) {
        if (Sources(q1, q2, l).size() > 1) return false;
      }
    }
  }
  return true;
}

bool Sta::IsTopDownComplete() const {
  std::vector<LabelId> sigma = EffectiveAlphabet();
  for (StateId q = 0; q < num_states(); ++q) {
    for (LabelId l : sigma) {
      if (Destinations(q, l).empty()) return false;
    }
  }
  return true;
}

bool Sta::IsBottomUpComplete() const {
  std::vector<LabelId> sigma = EffectiveAlphabet();
  for (StateId q1 = 0; q1 < num_states(); ++q1) {
    for (StateId q2 = 0; q2 < num_states(); ++q2) {
      for (LabelId l : sigma) {
        if (Sources(q1, q2, l).empty()) return false;
      }
    }
  }
  return true;
}

StateId Sta::MakeTopDownComplete() {
  // Find, for each state, the labels not covered by any transition.
  StateId sink = kNoState;
  std::vector<std::pair<StateId, LabelSet>> missing;
  for (StateId q = 0; q < num_states(); ++q) {
    LabelSet covered = LabelSet::None();
    for (const StaTransition& t : transitions_) {
      if (t.from == q) covered = covered.Union(t.labels);
    }
    LabelSet uncovered = covered.Complement();
    if (!uncovered.IsEmpty()) missing.emplace_back(q, uncovered);
  }
  if (missing.empty()) return kNoState;
  sink = AddState();
  for (auto& [q, labels] : missing) {
    AddTransition(q, labels, sink, sink);
  }
  AddTransition(sink, LabelSet::All(), sink, sink);
  return sink;
}

bool Sta::IsNonChanging(StateId q) const {
  // δ(q, l) = {(q, q)} for every l: the (q,q) loops must jointly cover Σ and
  // no other destination may exist for any label.
  LabelSet loop = LabelSet::None();
  for (const StaTransition& t : transitions_) {
    if (t.from != q) continue;
    if (t.to1 == q && t.to2 == q) {
      loop = loop.Union(t.labels);
    } else if (!t.labels.IsEmpty()) {
      return false;
    }
  }
  return loop.IsAll();
}

bool Sta::IsTopDownUniversal(StateId q) const {
  return IsNonChanging(q) && IsBottom(q) && sel_labels_[q].IsEmpty();
}

bool Sta::IsTopDownSink(StateId q) const {
  return IsNonChanging(q) && !IsBottom(q);
}

std::vector<StateId> Sta::ReachableFrom(
    const std::vector<StateId>& from) const {
  std::vector<bool> seen(num_states(), false);
  std::vector<StateId> stack = from;
  for (StateId q : from) seen[q] = true;
  while (!stack.empty()) {
    StateId q = stack.back();
    stack.pop_back();
    for (const StaTransition& t : transitions_) {
      if (t.from != q) continue;
      for (StateId next : {t.to1, t.to2}) {
        if (!seen[next]) {
          seen[next] = true;
          stack.push_back(next);
        }
      }
    }
  }
  std::vector<StateId> out;
  for (StateId q = 0; q < num_states(); ++q) {
    if (seen[q]) out.push_back(q);
  }
  return out;
}

Sta Sta::Restrict(const std::vector<StateId>& new_tops) const {
  std::vector<StateId> keep = ReachableFrom(new_tops);
  std::vector<StateId> remap(num_states(), kNoState);
  Sta out(static_cast<int>(keep.size()));
  for (size_t i = 0; i < keep.size(); ++i) {
    remap[keep[i]] = static_cast<StateId>(i);
  }
  for (StateId q : new_tops) out.AddTop(remap[q]);
  for (StateId q : bottoms_) {
    if (remap[q] != kNoState) out.AddBottom(remap[q]);
  }
  for (size_t i = 0; i < keep.size(); ++i) {
    out.sel_labels_[i] = sel_labels_[keep[i]];
  }
  for (const StaTransition& t : transitions_) {
    if (remap[t.from] == kNoState) continue;
    XPWQO_CHECK(remap[t.to1] != kNoState && remap[t.to2] != kNoState);
    out.AddTransition(remap[t.from], t.labels, remap[t.to1], remap[t.to2]);
  }
  return out;
}

std::string Sta::ToString(const Alphabet& alphabet) const {
  std::string out = "STA(states=" + std::to_string(num_states()) + ")\n";
  out += "  T = {";
  for (size_t i = 0; i < tops_.size(); ++i) {
    if (i) out += ",";
    out += "q" + std::to_string(tops_[i]);
  }
  out += "}  B = {";
  for (size_t i = 0; i < bottoms_.size(); ++i) {
    if (i) out += ",";
    out += "q" + std::to_string(bottoms_[i]);
  }
  out += "}\n";
  for (const StaTransition& t : transitions_) {
    bool sel = !sel_labels_[t.from].Intersect(t.labels).IsEmpty();
    out += "  q" + std::to_string(t.from) + ", " +
           t.labels.ToString(alphabet) + (sel ? " => (" : " -> (") + "q" +
           std::to_string(t.to1) + ", q" + std::to_string(t.to2) + ")\n";
  }
  for (StateId q = 0; q < num_states(); ++q) {
    if (!sel_labels_[q].IsEmpty()) {
      out += "  S(q" + std::to_string(q) +
             ") = " + sel_labels_[q].ToString(alphabet) + "\n";
    }
  }
  return out;
}

}  // namespace xpwqo
