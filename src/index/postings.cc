#include "index/postings.h"

#include <algorithm>

namespace xpwqo {
namespace {

/// Reads one LEB128 varint and advances *p.
inline uint32_t DecodeVarint(const uint8_t** p) {
  const uint8_t* q = *p;
  uint32_t v = *q & 0x7F;
  int shift = 7;
  while (*q & 0x80) {
    ++q;
    v |= static_cast<uint32_t>(*q & 0x7F) << shift;
    shift += 7;
  }
  *p = q + 1;
  return v;
}

}  // namespace

void PostingList::Freeze(NodeId universe, Rep rep) {
  if (frozen_) return;
  frozen_ = true;
  const bool want_dense =
      rep == Rep::kDense ||
      (rep == Rep::kAuto && count_ > 0 && universe > 0 &&
       static_cast<uint64_t>(count_) * kDenseInverse >=
           static_cast<uint64_t>(universe));
  if (!want_dense) {
    skip_first_.shrink_to_fit();
    skip_offset_.shrink_to_fit();
    deltas_.shrink_to_fit();
    return;
  }
  // Convert the delta blocks into a bitmap over [0, universe). Every stored
  // id is < universe by construction (ids are preorder ranks of the same
  // document the universe counts).
  XPWQO_CHECK(last_ < universe);
  bits_.Reserve(static_cast<size_t>(universe));
  NodeId prev = -1;
  const uint8_t* p = deltas_.data();
  for (uint32_t i = 0; i < count_; ++i) {
    NodeId id;
    if ((i & (kBlockSize - 1)) == 0) {
      const uint32_t b = i >> kBlockShift;
      id = skip_first_[b];
      p = deltas_.data() + skip_offset_[b];
    } else {
      id = prev + static_cast<NodeId>(DecodeVarint(&p));
    }
    bits_.Append(false, static_cast<size_t>(id - prev - 1));
    bits_.PushBack(true);
    prev = id;
  }
  bits_.Append(false, static_cast<size_t>(universe - prev - 1));
  bits_.Freeze();
  dense_ = true;
  skip_first_ = {};
  skip_offset_ = {};
  deltas_ = {};
}

uint32_t PostingList::FindBlock(NodeId bound) const {
  XPWQO_DCHECK(!skip_first_.empty() && skip_first_[0] <= bound);
  return static_cast<uint32_t>(std::upper_bound(skip_first_.begin(),
                                                skip_first_.end(), bound) -
                               skip_first_.begin()) -
         1;
}

NodeId PostingList::FirstAtLeast(NodeId lo) const {
  XPWQO_DCHECK(frozen_);
  if (count_ == 0 || last_ < lo) return kNullNode;
  if (lo < 0) lo = 0;
  if (dense_) {
    // Dense lists have a hit every ~kDenseInverse bits on average, so scan
    // a few words forward before paying the rank+select: the common probe
    // resolves from the first loaded word. last_ >= lo guarantees a one at
    // or after lo, so both paths are valid.
    constexpr size_t kScanWords = 8;  // 512 bits ≈ 85 expected hits at 1/6
    size_t w = static_cast<size_t>(lo) >> 6;
    uint64_t word = bits_.Word(w) & (~0ULL << (lo & 63));
    for (size_t i = 0; i < kScanWords; ++i) {
      if (word != 0) {
        return static_cast<NodeId>(w * 64 +
                                   static_cast<size_t>(
                                       std::countr_zero(word)));
      }
      word = bits_.Word(++w);  // zero-padded past size: stays empty
    }
    const size_t k = bits_.Rank1(static_cast<size_t>(lo)) + 1;
    return static_cast<NodeId>(bits_.Select1(k));
  }
  if (skip_first_[0] >= lo) return skip_first_[0];
  const uint32_t b = FindBlock(lo);
  NodeId id = skip_first_[b];
  if (id >= lo) return id;  // FindBlock gives first <= lo: head hit == lo
  const uint8_t* p = deltas_.data() + skip_offset_[b];
  const uint32_t in_block = BlockCount(b);
  for (uint32_t i = 1; i < in_block; ++i) {
    id += static_cast<NodeId>(DecodeVarint(&p));
    if (id >= lo) return id;
  }
  // lo is past this block's last id; the answer heads the next block
  // (FindBlock guarantees that block's first exceeds lo... see below) —
  // and a next block exists because last_ >= lo.
  XPWQO_DCHECK(b + 1 < NumBlocks());
  return skip_first_[b + 1];
}

int32_t PostingList::RankBelow(NodeId hi) const {
  XPWQO_DCHECK(frozen_);
  if (count_ == 0 || hi <= 0) return 0;
  if (dense_) {
    const size_t clamped =
        std::min(static_cast<size_t>(hi), bits_.size());
    return static_cast<int32_t>(bits_.Rank1(clamped));
  }
  if (skip_first_[0] >= hi) return 0;
  const uint32_t b = FindBlock(hi - 1);
  NodeId id = skip_first_[b];
  const uint8_t* p = deltas_.data() + skip_offset_[b];
  const uint32_t in_block = BlockCount(b);
  uint32_t below = 1;  // the block head, known < hi
  for (uint32_t i = 1; i < in_block; ++i) {
    id += static_cast<NodeId>(DecodeVarint(&p));
    if (id >= hi) break;
    ++below;
  }
  return static_cast<int32_t>((b << kBlockShift) + below);
}

void PostingList::Decode(std::vector<NodeId>* out) const {
  XPWQO_DCHECK(frozen_);
  out->clear();
  out->reserve(count_);
  if (dense_) {
    for (size_t w = 0; w < bits_.NumWords(); ++w) {
      uint64_t word = bits_.Word(w);
      while (word != 0) {
        out->push_back(static_cast<NodeId>(
            w * 64 + static_cast<size_t>(std::countr_zero(word))));
        word &= word - 1;
      }
    }
    return;
  }
  NodeId id = kNullNode;
  const uint8_t* p = deltas_.data();
  for (uint32_t i = 0; i < count_; ++i) {
    if ((i & (kBlockSize - 1)) == 0) {
      const uint32_t b = i >> kBlockShift;
      id = skip_first_[b];
      p = deltas_.data() + skip_offset_[b];
    } else {
      id += static_cast<NodeId>(DecodeVarint(&p));
    }
    out->push_back(id);
  }
}

PostingList::Cursor::Cursor(const PostingList& list) : list_(&list) {
  XPWQO_DCHECK(list.frozen());
  if (list.count_ == 0) return;  // cur_ stays kNullNode: born exhausted
  if (list.dense_) {
    cur_ = list.FirstAtLeast(0);
    return;
  }
  cur_ = list.skip_first_[0];
  next_ = list.deltas_.data() + list.skip_offset_[0];
  index_ = 0;
}

NodeId PostingList::Cursor::SeekGE(NodeId lo) {
  if (cur_ == kNullNode) return kNullNode;  // exhausted (sticky: lo is
                                            // non-decreasing)
  if (cur_ >= lo) return cur_;
  const PostingList& list = *list_;
  if (list.dense_) {
    cur_ = list.FirstAtLeast(lo);  // one rank + one select, O(1)-ish
    return cur_;
  }
  // Gallop over skip entries from the current block: find the largest block
  // whose first id is <= lo without decoding anything in between.
  const uint32_t num_blocks = list.NumBlocks();
  uint32_t b = index_ >> kBlockShift;
  uint32_t step = 1;
  while (b + step < num_blocks && list.skip_first_[b + step] <= lo) {
    b += step;
    step <<= 1;
  }
  for (step >>= 1; step >= 1; step >>= 1) {
    if (b + step < num_blocks && list.skip_first_[b + step] <= lo) b += step;
  }
  if (b != index_ >> kBlockShift) {
    index_ = b << kBlockShift;
    cur_ = list.skip_first_[b];
    next_ = list.deltas_.data() + list.skip_offset_[b];
    if (cur_ >= lo) return cur_;
  }
  // Decode forward within the run (crossing into the next block via its
  // skip entry) until the head reaches lo.
  while (true) {
    ++index_;
    if (index_ >= list.count_) {
      cur_ = kNullNode;
      return kNullNode;
    }
    if ((index_ & (kBlockSize - 1)) == 0) {
      const uint32_t nb = index_ >> kBlockShift;
      cur_ = list.skip_first_[nb];
      next_ = list.deltas_.data() + list.skip_offset_[nb];
    } else {
      cur_ += static_cast<NodeId>(DecodeVarint(&next_));
    }
    if (cur_ >= lo) return cur_;
  }
}

size_t PostingList::MemoryUsage() const {
  if (dense_) return bits_.MemoryUsage();
  return skip_first_.capacity() * sizeof(NodeId) +
         skip_offset_.capacity() * sizeof(uint32_t) +
         deltas_.capacity() * sizeof(uint8_t);
}

}  // namespace xpwqo
