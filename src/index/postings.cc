#include "index/postings.h"

#include <algorithm>
#include <cstring>

namespace xpwqo {
namespace {

/// Reads one LEB128 varint and advances *p.
inline uint32_t DecodeVarint(const uint8_t** p) {
  const uint8_t* q = *p;
  uint32_t v = *q & 0x7F;
  int shift = 7;
  while (*q & 0x80) {
    ++q;
    v |= static_cast<uint32_t>(*q & 0x7F) << shift;
    shift += 7;
  }
  *p = q + 1;
  return v;
}

}  // namespace

void PostingList::SyncViews() {
  if (external_) return;
  skip_first_v_ = skip_first_.data();
  skip_offset_v_ = skip_offset_.data();
  deltas_v_ = deltas_.data();
  num_blocks_ = static_cast<uint32_t>(skip_first_.size());
  delta_bytes_ = static_cast<uint32_t>(deltas_.size());
}

PostingList& PostingList::operator=(PostingList&& other) noexcept {
  if (this == &other) return *this;
  skip_first_ = std::move(other.skip_first_);
  skip_offset_ = std::move(other.skip_offset_);
  deltas_ = std::move(other.deltas_);
  bits_ = std::move(other.bits_);
  num_blocks_ = other.num_blocks_;
  delta_bytes_ = other.delta_bytes_;
  count_ = other.count_;
  last_ = other.last_;
  dense_ = other.dense_;
  frozen_ = other.frozen_;
  external_ = other.external_;
  // An external list's views stay aimed at the mapped image; an owned
  // list's views must follow its own (just-moved-in) buffers.
  if (external_) {
    skip_first_v_ = other.skip_first_v_;
    skip_offset_v_ = other.skip_offset_v_;
    deltas_v_ = other.deltas_v_;
  } else {
    SyncViews();
  }
  other.skip_first_v_ = nullptr;
  other.skip_offset_v_ = nullptr;
  other.deltas_v_ = nullptr;
  other.num_blocks_ = 0;
  other.delta_bytes_ = 0;
  other.count_ = 0;
  other.last_ = kNullNode;
  other.dense_ = false;
  other.frozen_ = false;
  other.external_ = false;
  return *this;
}

PostingList& PostingList::operator=(const PostingList& other) {
  if (this == &other) return *this;
  skip_first_ = other.skip_first_;
  skip_offset_ = other.skip_offset_;
  deltas_ = other.deltas_;
  bits_ = other.bits_;
  num_blocks_ = other.num_blocks_;
  delta_bytes_ = other.delta_bytes_;
  count_ = other.count_;
  last_ = other.last_;
  dense_ = other.dense_;
  frozen_ = other.frozen_;
  external_ = other.external_;
  if (external_) {
    skip_first_v_ = other.skip_first_v_;
    skip_offset_v_ = other.skip_offset_v_;
    deltas_v_ = other.deltas_v_;
  } else {
    SyncViews();
  }
  return *this;
}

void PostingList::Freeze(NodeId universe, Rep rep) {
  if (frozen_) return;
  frozen_ = true;
  const bool want_dense =
      rep == Rep::kDense ||
      (rep == Rep::kAuto && count_ > 0 && universe > 0 &&
       static_cast<uint64_t>(count_) * kDenseInverse >=
           static_cast<uint64_t>(universe));
  if (!want_dense) {
    skip_first_.shrink_to_fit();
    skip_offset_.shrink_to_fit();
    deltas_.shrink_to_fit();
    SyncViews();
    return;
  }
  // Convert the delta blocks into a bitmap over [0, universe). Every stored
  // id is < universe by construction (ids are preorder ranks of the same
  // document the universe counts).
  XPWQO_CHECK(last_ < universe);
  bits_.Reserve(static_cast<size_t>(universe));
  NodeId prev = -1;
  const uint8_t* p = deltas_.data();
  for (uint32_t i = 0; i < count_; ++i) {
    NodeId id;
    if ((i & (kBlockSize - 1)) == 0) {
      const uint32_t b = i >> kBlockShift;
      id = skip_first_[b];
      p = deltas_.data() + skip_offset_[b];
    } else {
      id = prev + static_cast<NodeId>(DecodeVarint(&p));
    }
    bits_.Append(false, static_cast<size_t>(id - prev - 1));
    bits_.PushBack(true);
    prev = id;
  }
  bits_.Append(false, static_cast<size_t>(universe - prev - 1));
  bits_.Freeze();
  dense_ = true;
  skip_first_ = {};
  skip_offset_ = {};
  deltas_ = {};
  SyncViews();
}

void PostingList::SerializeTo(std::string* out) const {
  XPWQO_DCHECK(frozen_);
  const auto put_u32 = [out](uint32_t v) {
    out->append(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  // An empty list always writes the sparse shape: the dense flag would
  // carry no payload, and normalizing keeps serialize(FromImage(x)) == x.
  const bool dense = dense_ && count_ > 0;
  put_u32(count_);
  put_u32(dense ? 1u : 0u);
  put_u32(static_cast<uint32_t>(last_));
  put_u32(dense ? 0u : delta_bytes_);
  if (count_ == 0) return;
  if (dense) {
    const uint64_t size_bits = bits_.size();
    out->append(reinterpret_cast<const char*>(&size_bits), sizeof(size_bits));
    bits_.SerializeWordsTo(out);
    return;
  }
  out->append(reinterpret_cast<const char*>(skip_first_v_),
              static_cast<size_t>(num_blocks_) * sizeof(NodeId));
  out->append(reinterpret_cast<const char*>(skip_offset_v_),
              static_cast<size_t>(num_blocks_) * sizeof(uint32_t));
  out->append(reinterpret_cast<const char*>(deltas_v_), delta_bytes_);
  out->append((8 - (delta_bytes_ & 7)) & 7, '\0');
}

StatusOr<PostingList> PostingList::FromImage(const uint8_t* data, size_t size,
                                             NodeId universe) {
  XPWQO_DCHECK((reinterpret_cast<uintptr_t>(data) & 7) == 0);
  const auto corrupt = [](const char* what) {
    return Status::Corruption(std::string("posting list: ") + what);
  };
  if (size < 16 || (size & 7) != 0) return corrupt("bad payload size");
  uint32_t count, flags, last_raw, aux;
  std::memcpy(&count, data, sizeof(count));
  std::memcpy(&flags, data + 4, sizeof(flags));
  std::memcpy(&last_raw, data + 8, sizeof(last_raw));
  std::memcpy(&aux, data + 12, sizeof(aux));
  if (flags > 1) return corrupt("unknown flags");
  PostingList list;
  list.frozen_ = true;
  list.external_ = true;
  if (count == 0) {
    if (flags != 0 || aux != 0 || size != 16 ||
        last_raw != static_cast<uint32_t>(kNullNode)) {
      return corrupt("malformed empty list");
    }
    return list;
  }
  const NodeId last = static_cast<NodeId>(last_raw);
  if (last < 0 || last >= universe) return corrupt("last id outside universe");
  if (count > static_cast<uint32_t>(universe)) {
    return corrupt("count exceeds universe");
  }
  list.count_ = count;
  list.last_ = last;
  if (flags & 1) {
    if (aux != 0) return corrupt("dense list with delta bytes");
    if (size < 24) return corrupt("truncated bitmap");
    uint64_t size_bits;
    std::memcpy(&size_bits, data + 16, sizeof(size_bits));
    if (size_bits != static_cast<uint64_t>(universe)) {
      return corrupt("bitmap universe mismatch");
    }
    if (size != 24 + BitVector::SerializedWordBytes(size_bits)) {
      return corrupt("bitmap size mismatch");
    }
    list.bits_ = BitVector::FromExternal(
        reinterpret_cast<const uint64_t*>(data + 24), size_bits);
    if (list.bits_.CountOnes() != count) {
      return corrupt("bitmap population mismatch");
    }
    if (!list.bits_.Get(static_cast<size_t>(last)) ||
        list.bits_.Rank1(static_cast<size_t>(last)) != count - 1) {
      return corrupt("bitmap disagrees with last id");
    }
    list.dense_ = true;
    return list;
  }
  const uint32_t nb = (count + kBlockSize - 1) >> kBlockShift;
  const size_t fixed = 16 + static_cast<size_t>(nb) * 8;
  const size_t padded = (fixed + aux + 7) & ~size_t{7};
  if (size != padded) return corrupt("sparse size mismatch");
  list.num_blocks_ = nb;
  list.delta_bytes_ = aux;
  list.skip_first_v_ = reinterpret_cast<const NodeId*>(data + 16);
  list.skip_offset_v_ =
      reinterpret_cast<const uint32_t*>(data + 16 + nb * sizeof(NodeId));
  list.deltas_v_ = data + fixed;
  // The skip tables steer every seek, so malformed ones would walk the
  // reader out of the delta stream: demand strictly increasing block heads
  // inside the universe and monotone in-range delta offsets. The delta
  // bytes themselves are shaped by count-bounded decoding and covered by
  // the caller's checksum, so they need no structural scan.
  NodeId prev_first = kNullNode;
  for (uint32_t b = 0; b < nb; ++b) {
    const NodeId first = list.skip_first_v_[b];
    if (first <= prev_first || first >= universe) {
      return corrupt("skip heads not increasing inside universe");
    }
    prev_first = first;
    const uint32_t off = list.skip_offset_v_[b];
    if (off > aux || (b == 0 ? off != 0 : off < list.skip_offset_v_[b - 1])) {
      return corrupt("skip offsets not monotone");
    }
  }
  if (last < prev_first) return corrupt("last id precedes final block head");
  return list;
}

uint32_t PostingList::FindBlock(NodeId bound) const {
  XPWQO_DCHECK(num_blocks_ > 0 && skip_first_v_[0] <= bound);
  return static_cast<uint32_t>(
             std::upper_bound(skip_first_v_, skip_first_v_ + num_blocks_,
                              bound) -
             skip_first_v_) -
         1;
}

NodeId PostingList::FirstAtLeast(NodeId lo) const {
  XPWQO_DCHECK(frozen_);
  if (count_ == 0 || last_ < lo) return kNullNode;
  if (lo < 0) lo = 0;
  if (dense_) {
    // Dense lists have a hit every ~kDenseInverse bits on average, so scan
    // a few words forward before paying the rank+select: the common probe
    // resolves from the first loaded word. last_ >= lo guarantees a one at
    // or after lo, so both paths are valid.
    constexpr size_t kScanWords = 8;  // 512 bits ≈ 85 expected hits at 1/6
    size_t w = static_cast<size_t>(lo) >> 6;
    uint64_t word = bits_.Word(w) & (~0ULL << (lo & 63));
    for (size_t i = 0; i < kScanWords; ++i) {
      if (word != 0) {
        return static_cast<NodeId>(w * 64 +
                                   static_cast<size_t>(
                                       std::countr_zero(word)));
      }
      word = bits_.Word(++w);  // zero-padded past size: stays empty
    }
    const size_t k = bits_.Rank1(static_cast<size_t>(lo)) + 1;
    return static_cast<NodeId>(bits_.Select1(k));
  }
  if (skip_first_v_[0] >= lo) return skip_first_v_[0];
  const uint32_t b = FindBlock(lo);
  NodeId id = skip_first_v_[b];
  if (id >= lo) return id;  // FindBlock gives first <= lo: head hit == lo
  const uint8_t* p = deltas_v_ + skip_offset_v_[b];
  const uint32_t in_block = BlockCount(b);
  for (uint32_t i = 1; i < in_block; ++i) {
    id += static_cast<NodeId>(DecodeVarint(&p));
    if (id >= lo) return id;
  }
  // lo is past this block's last id; the answer heads the next block
  // (FindBlock guarantees that block's first exceeds lo... see below) —
  // and a next block exists because last_ >= lo.
  XPWQO_DCHECK(b + 1 < NumBlocks());
  return skip_first_v_[b + 1];
}

int32_t PostingList::RankBelow(NodeId hi) const {
  XPWQO_DCHECK(frozen_);
  if (count_ == 0 || hi <= 0) return 0;
  if (dense_) {
    const size_t clamped =
        std::min(static_cast<size_t>(hi), bits_.size());
    return static_cast<int32_t>(bits_.Rank1(clamped));
  }
  if (skip_first_v_[0] >= hi) return 0;
  const uint32_t b = FindBlock(hi - 1);
  NodeId id = skip_first_v_[b];
  const uint8_t* p = deltas_v_ + skip_offset_v_[b];
  const uint32_t in_block = BlockCount(b);
  uint32_t below = 1;  // the block head, known < hi
  for (uint32_t i = 1; i < in_block; ++i) {
    id += static_cast<NodeId>(DecodeVarint(&p));
    if (id >= hi) break;
    ++below;
  }
  return static_cast<int32_t>((b << kBlockShift) + below);
}

void PostingList::Decode(std::vector<NodeId>* out) const {
  XPWQO_DCHECK(frozen_);
  out->clear();
  out->reserve(count_);
  if (dense_) {
    for (size_t w = 0; w < bits_.NumWords(); ++w) {
      uint64_t word = bits_.Word(w);
      while (word != 0) {
        out->push_back(static_cast<NodeId>(
            w * 64 + static_cast<size_t>(std::countr_zero(word))));
        word &= word - 1;
      }
    }
    return;
  }
  NodeId id = kNullNode;
  const uint8_t* p = deltas_v_;
  for (uint32_t i = 0; i < count_; ++i) {
    if ((i & (kBlockSize - 1)) == 0) {
      const uint32_t b = i >> kBlockShift;
      id = skip_first_v_[b];
      p = deltas_v_ + skip_offset_v_[b];
    } else {
      id += static_cast<NodeId>(DecodeVarint(&p));
    }
    out->push_back(id);
  }
}

PostingList::Cursor::Cursor(const PostingList& list) : list_(&list) {
  XPWQO_DCHECK(list.frozen());
  if (list.count_ == 0) return;  // cur_ stays kNullNode: born exhausted
  if (list.dense_) {
    cur_ = list.FirstAtLeast(0);
    return;
  }
  cur_ = list.skip_first_v_[0];
  next_ = list.deltas_v_ + list.skip_offset_v_[0];
  index_ = 0;
}

NodeId PostingList::Cursor::SeekGE(NodeId lo) {
  if (cur_ == kNullNode) return kNullNode;  // exhausted (sticky: lo is
                                            // non-decreasing)
  if (cur_ >= lo) return cur_;
  const PostingList& list = *list_;
  if (list.dense_) {
    cur_ = list.FirstAtLeast(lo);  // one rank + one select, O(1)-ish
    return cur_;
  }
  // Gallop over skip entries from the current block: find the largest block
  // whose first id is <= lo without decoding anything in between.
  const uint32_t num_blocks = list.NumBlocks();
  uint32_t b = index_ >> kBlockShift;
  uint32_t step = 1;
  while (b + step < num_blocks && list.skip_first_v_[b + step] <= lo) {
    b += step;
    step <<= 1;
  }
  for (step >>= 1; step >= 1; step >>= 1) {
    if (b + step < num_blocks && list.skip_first_v_[b + step] <= lo) b += step;
  }
  if (b != index_ >> kBlockShift) {
    index_ = b << kBlockShift;
    cur_ = list.skip_first_v_[b];
    next_ = list.deltas_v_ + list.skip_offset_v_[b];
    if (cur_ >= lo) return cur_;
  }
  // Decode forward within the run (crossing into the next block via its
  // skip entry) until the head reaches lo.
  while (true) {
    ++index_;
    if (index_ >= list.count_) {
      cur_ = kNullNode;
      return kNullNode;
    }
    if ((index_ & (kBlockSize - 1)) == 0) {
      const uint32_t nb = index_ >> kBlockShift;
      cur_ = list.skip_first_v_[nb];
      next_ = list.deltas_v_ + list.skip_offset_v_[nb];
    } else {
      cur_ += static_cast<NodeId>(DecodeVarint(&next_));
    }
    if (cur_ >= lo) return cur_;
  }
}

size_t PostingList::MemoryUsage() const {
  if (dense_) return bits_.MemoryUsage();
  if (frozen_) {
    // Views make frozen size exact whether the bytes are owned (shrunk to
    // fit at Freeze) or mapped.
    return static_cast<size_t>(num_blocks_) *
               (sizeof(NodeId) + sizeof(uint32_t)) +
           delta_bytes_;
  }
  return skip_first_.capacity() * sizeof(NodeId) +
         skip_offset_.capacity() * sizeof(uint32_t) +
         deltas_.capacity() * sizeof(uint8_t);
}

}  // namespace xpwqo
