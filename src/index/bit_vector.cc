#include "index/bit_vector.h"

#include <algorithm>
#include <utility>

#ifdef XPWQO_CPU_BMI2
#include <immintrin.h>
#endif

namespace xpwqo {
namespace {

/// Position (0-based) of the k-th set bit of `word`, k in [1, popcount].
inline int SelectInWord(uint64_t word, uint64_t k) {
#ifdef XPWQO_CPU_BMI2
  // Deposit a single bit at the k-th set position, then locate it.
  return std::countr_zero(_pdep_u64(1ULL << (k - 1), word));
#else
  // Portable broadword fallback: find the byte by cumulative popcounts,
  // then the bit within the byte.
  for (int byte = 0; byte < 8; ++byte) {
    uint64_t b = (word >> (8 * byte)) & 0xFF;
    uint64_t ones = std::popcount(b);
    if (k <= ones) {
      for (int bit = 0; bit < 8; ++bit) {
        if ((b >> bit) & 1) {
          if (--k == 0) return 8 * byte + bit;
        }
      }
    }
    k -= ones;
  }
  XPWQO_CHECK(false);
  return -1;
#endif
}

}  // namespace

BitVector& BitVector::operator=(BitVector&& other) noexcept {
  if (this == &other) return *this;
  words_ = std::move(other.words_);
  rank_ = std::move(other.rank_);
  select1_hint_ = std::move(other.select1_hint_);
  select0_hint_ = std::move(other.select0_hint_);
  select1_sub_ = std::move(other.select1_sub_);
  select0_sub_ = std::move(other.select0_sub_);
  size_ = other.size_;
  num_words_ = other.num_words_;
  total_ones_ = other.total_ones_;
  frozen_ = other.frozen_;
  external_ = other.external_;
  // Moving the vector transfers its heap buffer, so the source's data_
  // stays valid here in owned mode; re-deriving keeps the invariant
  // explicit either way.
  data_ = external_ ? other.data_ : words_.data();
  other.data_ = nullptr;
  other.size_ = 0;
  other.frozen_ = false;
  return *this;
}

BitVector& BitVector::operator=(const BitVector& other) {
  if (this == &other) return *this;
  words_ = other.words_;
  rank_ = other.rank_;
  select1_hint_ = other.select1_hint_;
  select0_hint_ = other.select0_hint_;
  select1_sub_ = other.select1_sub_;
  select0_sub_ = other.select0_sub_;
  size_ = other.size_;
  num_words_ = other.num_words_;
  total_ones_ = other.total_ones_;
  frozen_ = other.frozen_;
  external_ = other.external_;
  // An external copy shares the mapped words; an owned copy must point at
  // its own freshly copied buffer, not the source's.
  data_ = external_ ? other.data_ : words_.data();
  return *this;
}

void BitVector::Append(bool bit, size_t count) {
  XPWQO_DCHECK(!frozen_);
  // Fill word-at-a-time: finish the current partial word, then write whole
  // words, then the tail.
  while (count > 0 && (size_ & 63) != 0) {
    PushBack(bit);
    --count;
  }
  while (count >= 64) {
    words_.push_back(bit ? ~0ULL : 0ULL);
    size_ += 64;
    count -= 64;
  }
  data_ = words_.data();
  while (count > 0) {
    PushBack(bit);
    --count;
  }
}

void BitVector::Freeze() {
  if (frozen_) return;
  frozen_ = true;
  num_words_ = words_.size();
  // Pad one zero word so Rank1(size()) may read words_[size()/64] when
  // size() is a multiple of 64.
  words_.push_back(0);
  data_ = words_.data();
  BuildDirectories();
}

BitVector BitVector::FromWords(std::vector<uint64_t> words, size_t size_bits) {
  BitVector v;
  v.size_ = size_bits;
  v.num_words_ = (size_bits + 63) / 64;
  // Data words + the zero pad word Freeze() appends on the streaming path
  // (Rank1(size()) may read one word past the data).
  words.resize(v.num_words_ + 1, 0);
  v.words_ = std::move(words);
  v.data_ = v.words_.data();
  v.frozen_ = true;
  v.BuildDirectories();
  return v;
}

BitVector BitVector::FromExternal(const uint64_t* words, size_t size_bits) {
  BitVector v;
  v.size_ = size_bits;
  v.num_words_ = (size_bits + 63) / 64;
  v.data_ = words;
  v.external_ = true;
  v.frozen_ = true;
  v.BuildDirectories();
  return v;
}

void BitVector::SerializeWordsTo(std::string* out) const {
  XPWQO_DCHECK(frozen_);
  out->append(reinterpret_cast<const char*>(data_),
              (num_words_ + 1) * sizeof(uint64_t));
}

void BitVector::BuildDirectories() {
  const size_t total_words = num_words_ + 1;  // + the zero pad word
  const size_t num_blocks =
      (total_words + kWordsPerBlock - 1) / kWordsPerBlock;
  rank_.assign(2 * num_blocks, 0);
  size_t ones = 0;
  for (size_t b = 0; b < num_blocks; ++b) {
    rank_[2 * b] = ones;
    uint64_t packed = 0;
    uint64_t in_block = 0;
    for (size_t t = 0; t < kWordsPerBlock; ++t) {
      if (t != 0) packed |= in_block << (9 * (t - 1));
      const size_t w = b * kWordsPerBlock + t;
      if (w < total_words) in_block += std::popcount(data_[w]);
    }
    rank_[2 * b + 1] = packed;
    ones += in_block;
  }
  total_ones_ = ones;

  // Two-level select directory. First collect the superblock of every
  // (m*kSelectSub + 1)-th one (resp. zero); every eighth of those is a hint
  // superblock, and the seven in between pack as 8-bit superblock-local
  // deltas (saturated at 255 — queries then fall back to the next hint).
  const size_t total_zeros = size_ - total_ones_;
  const size_t data_blocks = (size_ + kWordsPerBlock * 64 - 1) /
                             (kWordsPerBlock * 64);
  std::vector<uint32_t> subs1, subs0;
  subs1.reserve(total_ones_ / kSelectSub + 1);
  subs0.reserve(total_zeros / kSelectSub + 1);
  size_t next_one = 1, next_zero = 1;
  for (size_t b = 0; b < data_blocks; ++b) {
    const size_t ones_end =
        (b + 1 < data_blocks) ? static_cast<size_t>(rank_[2 * (b + 1)])
                              : total_ones_;
    const size_t bits_end = std::min(size_, (b + 1) * kWordsPerBlock * 64);
    const size_t zeros_end = bits_end - ones_end;
    while (next_one <= ones_end) {
      subs1.push_back(static_cast<uint32_t>(b));
      next_one += kSelectSub;
    }
    while (next_zero <= zeros_end) {
      subs0.push_back(static_cast<uint32_t>(b));
      next_zero += kSelectSub;
    }
  }
  constexpr size_t kSubsPerSample = kSelectSample / kSelectSub;
  auto pack = [](const std::vector<uint32_t>& subs,
                 std::vector<uint32_t>* hint, std::vector<uint64_t>* sub) {
    const size_t samples = (subs.size() + kSubsPerSample - 1) /
                           kSubsPerSample;
    hint->clear();
    sub->clear();
    hint->reserve(samples);
    sub->reserve(samples);
    for (size_t j = 0; j < samples; ++j) {
      const uint32_t base = subs[j * kSubsPerSample];
      hint->push_back(base);
      uint64_t packed = 0;
      for (size_t m = 1; m < kSubsPerSample; ++m) {
        const size_t idx = j * kSubsPerSample + m;
        const uint64_t d =
            idx < subs.size() ? std::min<uint64_t>(subs[idx] - base, 255)
                              : 255;
        packed |= d << (8 * (m - 1));
      }
      sub->push_back(packed);
    }
  };
  pack(subs1, &select1_hint_, &select1_sub_);
  pack(subs0, &select0_hint_, &select0_sub_);
}

size_t BitVector::Select1(size_t k) const {
  XPWQO_DCHECK(frozen_);
  XPWQO_DCHECK(k >= 1 && k <= total_ones_);
  // Narrow to the sub-sample's superblock range (one hint read plus one
  // packed-delta read), then binary-search for the last superblock with
  // fewer than k ones before it — usually a zero-or-one-step search.
  const size_t j = (k - 1) / kSelectSample;
  const size_t m = ((k - 1) % kSelectSample) / kSelectSub;
  const size_t base = select1_hint_[j];
  size_t lo = base;
  size_t hi = (j + 1 < select1_hint_.size())
                  ? select1_hint_[j + 1] + 1
                  : (size_ + kWordsPerBlock * 64 - 1) / (kWordsPerBlock * 64);
  const uint64_t subs = select1_sub_[j];
  if (m > 0) lo = base + ((subs >> (8 * (m - 1))) & 0xFF);
  if (m < kSelectSample / kSelectSub - 1) {
    const size_t d = (subs >> (8 * m)) & 0xFF;
    // A saturated delta only bounds from below; keep the hint fallback.
    if (d < 255) hi = std::min(hi, base + d + 1);
  }
  while (lo + 1 < hi) {
    const size_t mid = (lo + hi) / 2;
    if (BlockRank(mid) < k) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  // Resolve the word through the packed relative counts (<= 7 compares).
  uint64_t rem = k - BlockRank(lo);
  const uint64_t packed = rank_[2 * lo + 1];
  size_t t = 0;
  while (t < kWordsPerBlock - 1 && ((packed >> (9 * t)) & 0x1FF) < rem) ++t;
  if (t != 0) rem -= (packed >> (9 * (t - 1))) & 0x1FF;
  const size_t w = lo * kWordsPerBlock + t;
  return 64 * w + SelectInWord(data_[w], rem);
}

size_t BitVector::Select0(size_t k) const {
  XPWQO_DCHECK(frozen_);
  XPWQO_DCHECK(k >= 1 && k <= size_ - total_ones_);
  const size_t j = (k - 1) / kSelectSample;
  const size_t m = ((k - 1) % kSelectSample) / kSelectSub;
  const size_t base = select0_hint_[j];
  size_t lo = base;
  size_t hi = (j + 1 < select0_hint_.size())
                  ? select0_hint_[j + 1] + 1
                  : (size_ + kWordsPerBlock * 64 - 1) / (kWordsPerBlock * 64);
  const uint64_t subs = select0_sub_[j];
  if (m > 0) lo = base + ((subs >> (8 * (m - 1))) & 0xFF);
  if (m < kSelectSample / kSelectSub - 1) {
    const size_t d = (subs >> (8 * m)) & 0xFF;
    if (d < 255) hi = std::min(hi, base + d + 1);
  }
  while (lo + 1 < hi) {
    const size_t mid = (lo + hi) / 2;
    if (BlockRank0(mid) < k) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  uint64_t rem = k - BlockRank0(lo);
  const uint64_t packed = rank_[2 * lo + 1];
  size_t t = 0;
  // Zeros in words [0, t) of the superblock = 64*t - packed ones count.
  while (t < kWordsPerBlock - 1 &&
         64 * (t + 1) - ((packed >> (9 * t)) & 0x1FF) < rem) {
    ++t;
  }
  if (t != 0) rem -= 64 * t - ((packed >> (9 * (t - 1))) & 0x1FF);
  const size_t w = lo * kWordsPerBlock + t;
  return 64 * w + SelectInWord(~data_[w], rem);
}

size_t BitVector::MemoryUsage() const {
  const size_t word_bytes =
      (frozen_ ? num_words_ + 1 : words_.size()) * sizeof(uint64_t);
  return word_bytes + rank_.size() * sizeof(uint64_t) +
         (select1_hint_.size() + select0_hint_.size()) * sizeof(uint32_t) +
         (select1_sub_.size() + select0_sub_.size()) * sizeof(uint64_t);
}

}  // namespace xpwqo
