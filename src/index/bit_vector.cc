#include "index/bit_vector.h"

#include <bit>

namespace xpwqo {
namespace {

/// Position (0-based) of the k-th set bit of `word`, k in [1, popcount].
int SelectInWord(uint64_t word, int k) {
  for (int byte = 0; byte < 8; ++byte) {
    int ones = std::popcount(static_cast<uint64_t>((word >> (8 * byte)) & 0xFF));
    if (k <= ones) {
      uint8_t b = (word >> (8 * byte)) & 0xFF;
      for (int bit = 0; bit < 8; ++bit) {
        if ((b >> bit) & 1) {
          if (--k == 0) return 8 * byte + bit;
        }
      }
    }
    k -= ones;
  }
  XPWQO_CHECK(false);
  return -1;
}

}  // namespace

void BitVector::PushBack(bool bit) {
  XPWQO_DCHECK(!frozen_);
  if ((size_ & 63) == 0) words_.push_back(0);
  if (bit) words_.back() |= (1ULL << (size_ & 63));
  ++size_;
}

void BitVector::Append(bool bit, size_t count) {
  for (size_t i = 0; i < count; ++i) PushBack(bit);
}

void BitVector::Freeze() {
  if (frozen_) return;
  frozen_ = true;
  size_t num_blocks = (words_.size() + kWordsPerBlock - 1) / kWordsPerBlock;
  block_rank_.resize(num_blocks + 1);
  size_t ones = 0;
  for (size_t b = 0; b < num_blocks; ++b) {
    block_rank_[b] = ones;
    size_t end = std::min(words_.size(), (b + 1) * kWordsPerBlock);
    for (size_t w = b * kWordsPerBlock; w < end; ++w) {
      ones += std::popcount(words_[w]);
    }
  }
  block_rank_[num_blocks] = ones;
  total_ones_ = ones;
}

size_t BitVector::Rank1(size_t i) const {
  XPWQO_DCHECK(frozen_);
  XPWQO_DCHECK(i <= size_);
  size_t word = i >> 6;
  size_t block = word / kWordsPerBlock;
  size_t ones = block_rank_[block];
  for (size_t w = block * kWordsPerBlock; w < word; ++w) {
    ones += std::popcount(words_[w]);
  }
  size_t rem = i & 63;
  if (rem != 0) {
    ones += std::popcount(words_[word] & ((1ULL << rem) - 1));
  }
  return ones;
}

size_t BitVector::Select1(size_t k) const {
  XPWQO_DCHECK(frozen_);
  XPWQO_DCHECK(k >= 1 && k <= total_ones_);
  // Binary search the superblock directory.
  size_t lo = 0, hi = block_rank_.size() - 1;
  while (lo + 1 < hi) {
    size_t mid = (lo + hi) / 2;
    if (block_rank_[mid] < k) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  size_t remaining = k - block_rank_[lo];
  size_t end = std::min(words_.size(), (lo + 1) * kWordsPerBlock);
  for (size_t w = lo * kWordsPerBlock; w < end; ++w) {
    size_t ones = std::popcount(words_[w]);
    if (remaining <= ones) {
      return 64 * w + SelectInWord(words_[w], static_cast<int>(remaining));
    }
    remaining -= ones;
  }
  XPWQO_CHECK(false);
  return 0;
}

size_t BitVector::Select0(size_t k) const {
  XPWQO_DCHECK(frozen_);
  XPWQO_DCHECK(k >= 1 && k <= size_ - total_ones_);
  // Binary search on Rank0 via the superblock directory (zeros before block b
  // = 512*b - block_rank_[b], clamped by size_).
  size_t lo = 0, hi = block_rank_.size() - 1;
  while (lo + 1 < hi) {
    size_t mid = (lo + hi) / 2;
    size_t zeros = mid * kWordsPerBlock * 64 - block_rank_[mid];
    if (zeros < k) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  size_t remaining = k - (lo * kWordsPerBlock * 64 - block_rank_[lo]);
  size_t end = std::min(words_.size(), (lo + 1) * kWordsPerBlock);
  for (size_t w = lo * kWordsPerBlock; w < end; ++w) {
    size_t zeros = std::popcount(~words_[w]);
    if (remaining <= zeros) {
      return 64 * w + SelectInWord(~words_[w], static_cast<int>(remaining));
    }
    remaining -= zeros;
  }
  XPWQO_CHECK(false);
  return 0;
}

size_t BitVector::MemoryUsage() const {
  return words_.size() * sizeof(uint64_t) +
         block_rank_.size() * sizeof(uint64_t);
}

}  // namespace xpwqo
