#include "index/succinct_tree.h"

namespace xpwqo {

SuccinctTree::SuccinctTree(const Document& doc) {
  const int32_t n = doc.num_nodes();
  labels_.reserve(n);
  // Emit the balanced-parentheses string by an explicit-stack preorder walk;
  // a '(' when a node is entered, ')' when left.
  std::vector<NodeId> stack;
  if (doc.root() != kNullNode) stack.push_back(doc.root());
  // We cannot interleave naive recursion here: document depth is unbounded.
  // The stack holds "enter node" (>= 0) and "close" markers (~node).
  while (!stack.empty()) {
    NodeId top = stack.back();
    stack.pop_back();
    if (top < 0) {
      bp_.PushBack(false);
      continue;
    }
    bp_.PushBack(true);
    labels_.push_back(doc.label(top));
    stack.push_back(~top);  // close marker
    // Push children in reverse so the first child is processed first.
    std::vector<NodeId> kids;
    for (NodeId c = doc.first_child(top); c != kNullNode;
         c = doc.next_sibling(c)) {
      kids.push_back(c);
    }
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.push_back(*it);
    }
  }
  bp_.Freeze();
  ops_ = BalancedParens(&bp_);
  XPWQO_CHECK(static_cast<int32_t>(labels_.size()) == n);
}

NodeId SuccinctTree::parent(NodeId n) const {
  int64_t p = ops_.Enclose(Pos(n));
  return p == BalancedParens::kNotFound ? kNullNode : NodeAt(p);
}

NodeId SuccinctTree::first_child(NodeId n) const {
  int64_t p = Pos(n) + 1;
  if (p >= ops_.size() || !ops_.IsOpen(p)) return kNullNode;
  return NodeAt(p);
}

NodeId SuccinctTree::next_sibling(NodeId n) const {
  int64_t close = ops_.FindClose(Pos(n));
  if (close + 1 >= ops_.size() || !ops_.IsOpen(close + 1)) return kNullNode;
  return NodeAt(close + 1);
}

int32_t SuccinctTree::subtree_size(NodeId n) const {
  int64_t pos = Pos(n);
  int64_t close = ops_.FindClose(pos);
  return static_cast<int32_t>((close - pos + 1) / 2);
}

int SuccinctTree::Depth(NodeId n) const {
  return static_cast<int>(ops_.Excess(Pos(n))) - 1;
}

size_t SuccinctTree::MemoryUsage() const {
  return bp_.MemoryUsage() + ops_.MemoryUsage() +
         labels_.size() * sizeof(LabelId);
}

}  // namespace xpwqo
