#include "index/succinct_tree.h"

#include <algorithm>
#include <utility>

#include "index/succinct_builder.h"

namespace xpwqo {

SuccinctTree::SuccinctTree(BitVector bits, std::vector<LabelId> labels) {
  labels_ = std::move(labels);
  labels_v_ = labels_.data();
  num_nodes_ = static_cast<int32_t>(labels_.size());
  Adopt(std::move(bits));
}

SuccinctTree::SuccinctTree(BitVector external_bits, const LabelId* labels,
                           size_t num_nodes) {
  labels_v_ = labels;
  num_nodes_ = static_cast<int32_t>(num_nodes);
  Adopt(std::move(external_bits));
}

SuccinctTree::SuccinctTree(const Document& doc) {
  // Replay the document through the streaming builder by an explicit-stack
  // preorder walk; an open event when a node is entered, a close when left.
  SuccinctBuilder builder;
  builder.ReserveNodes(static_cast<size_t>(doc.num_nodes()));
  std::vector<NodeId> stack;
  if (doc.root() != kNullNode) stack.push_back(doc.root());
  // We cannot interleave naive recursion here: document depth is unbounded.
  // The stack holds "enter node" (>= 0) and "close" markers (~node).
  while (!stack.empty()) {
    NodeId top = stack.back();
    stack.pop_back();
    if (top < 0) {
      builder.EndElement();
      continue;
    }
    builder.BeginElement(doc.label(top));
    stack.push_back(~top);  // close marker
    // Push children, then reverse them in place so the first child is
    // processed first — no per-node temporary vector.
    const size_t base = stack.size();
    for (NodeId c = doc.first_child(top); c != kNullNode;
         c = doc.next_sibling(c)) {
      stack.push_back(c);
    }
    std::reverse(stack.begin() + base, stack.end());
  }
  labels_ = builder.TakeLabels();
  labels_v_ = labels_.data();
  num_nodes_ = static_cast<int32_t>(labels_.size());
  Adopt(builder.TakeBits());
  XPWQO_CHECK(num_nodes() == doc.num_nodes());
}

void SuccinctTree::Adopt(BitVector bits) {
  bp_ = std::move(bits);
  bp_.Freeze();  // no-op when the bits arrive frozen (external mode)
  ops_ = BalancedParens(&bp_);
  XPWQO_CHECK(bp_.CountOnes() == static_cast<size_t>(num_nodes_));
  XPWQO_CHECK(bp_.size() == 2 * static_cast<size_t>(num_nodes_));
}

NodeId SuccinctTree::parent(NodeId n) const {
  int64_t p = ops_.Enclose(Pos(n));
  return p == BalancedParens::kNotFound ? kNullNode : NodeAt(p);
}

NodeId SuccinctTree::first_child(NodeId n) const {
  int64_t p = Pos(n) + 1;
  if (p >= ops_.size() || !ops_.IsOpen(p)) return kNullNode;
  return NodeAt(p);
}

NodeId SuccinctTree::next_sibling(NodeId n) const {
  int64_t close = ops_.FindClose(Pos(n));
  if (close + 1 >= ops_.size() || !ops_.IsOpen(close + 1)) return kNullNode;
  return NodeAt(close + 1);
}

int32_t SuccinctTree::subtree_size(NodeId n) const {
  int64_t pos = Pos(n);
  int64_t close = ops_.FindClose(pos);
  return static_cast<int32_t>((close - pos + 1) / 2);
}

NodeId SuccinctTree::XmlEnd(NodeId n) const {
  // Opens strictly before n's close paren = n's preorder rank + subtree size.
  int64_t close = ops_.FindClose(Pos(n));
  return static_cast<NodeId>(bp_.Rank1(static_cast<size_t>(close)));
}

NodeId SuccinctTree::BinaryEnd(NodeId n) const {
  int64_t pos = Pos(n);
  int64_t e = ops_.Excess(pos);
  // The first position after pos with excess e-2 is the close paren of n's
  // parent (for the root, e == 1, and the close of n itself ends the range).
  int64_t close = e >= 2 ? ops_.FwdSearchExcess(pos + 1, e - 2)
                         : ops_.FindClose(pos);
  XPWQO_DCHECK(close != BalancedParens::kNotFound);
  return static_cast<NodeId>(bp_.Rank1(static_cast<size_t>(close)));
}

int SuccinctTree::Depth(NodeId n) const {
  return static_cast<int>(ops_.Excess(Pos(n))) - 1;
}

size_t SuccinctTree::MemoryUsage() const {
  return bp_.MemoryUsage() + ops_.MemoryUsage() +
         static_cast<size_t>(num_nodes_) * sizeof(LabelId);
}

}  // namespace xpwqo
