// SuccinctTree: the document topology in 2 bits per node (+ directory), per
// the paper's use of fully-functional succinct trees [18] to avoid the 5-10x
// memory blow-up of pointer structures (§1). Node identifiers are preorder
// ranks and therefore interchangeable with Document NodeIds, so the label
// index and every evaluator work unchanged on either backend.
#ifndef XPWQO_INDEX_SUCCINCT_TREE_H_
#define XPWQO_INDEX_SUCCINCT_TREE_H_

#include <span>
#include <vector>

#include "index/balanced_parens.h"
#include "tree/document.h"

namespace xpwqo {

/// Balanced-parentheses encoding of a document tree with the navigation
/// operations the evaluators need.
class SuccinctTree {
 public:
  /// Encodes the topology (and copies the label array) of `doc`. This is a
  /// convenience wrapper over SuccinctBuilder — the streaming ingestion
  /// pipeline builds the same representation directly from parser events
  /// without materializing a Document first.
  explicit SuccinctTree(const Document& doc);

  /// Adopts streamed construction output: the appended (unfrozen)
  /// parenthesis bits and the preorder label array, as produced by
  /// SuccinctBuilder. Freezes the bits and builds the rank/rmM directories.
  SuccinctTree(BitVector bits, std::vector<LabelId> labels);

  /// Wraps image-backed parts without copying: `external_bits` is a frozen
  /// BitVector over mapped BP words (BitVector::FromExternal) and `labels`
  /// the preorder label array inside the same mapped image, which must
  /// outlive the tree. The persist reader has already checksummed the bytes
  /// and validated the shape (bits.size() == 2 * num_nodes,
  /// bits.CountOnes() == num_nodes); only the in-memory rank/rmM
  /// directories are built here.
  SuccinctTree(BitVector external_bits, const LabelId* labels,
               size_t num_nodes);

  SuccinctTree(const SuccinctTree&) = delete;
  SuccinctTree& operator=(const SuccinctTree&) = delete;
  SuccinctTree(SuccinctTree&&) = delete;

  int32_t num_nodes() const { return num_nodes_; }
  NodeId root() const { return num_nodes() == 0 ? kNullNode : 0; }

  LabelId label(NodeId n) const { return labels_v_[n]; }
  /// The raw preorder label array (LabelIndex builds its posting lists
  /// straight from this, no pointer tree needed; the persist writer
  /// serializes it verbatim). May view mapped image memory.
  std::span<const LabelId> label_array() const {
    return {labels_v_, static_cast<size_t>(num_nodes_)};
  }
  /// The frozen BP bit sequence (the persist writer serializes its words).
  const BitVector& bp_bits() const { return bp_; }
  NodeId parent(NodeId n) const;
  NodeId first_child(NodeId n) const;
  NodeId next_sibling(NodeId n) const;
  int32_t subtree_size(NodeId n) const;
  int Depth(NodeId n) const;

  /// One past the last preorder id in n's XML subtree: one FindClose plus
  /// one Rank1 (opens before n's close paren = n + subtree size).
  NodeId XmlEnd(NodeId n) const;

  /// One past the last preorder id in n's *binary* (fcns) subtree. A single
  /// forward excess search locates the parent's close paren directly, so
  /// this costs one search + one Rank1 instead of Enclose + FindClose.
  NodeId BinaryEnd(NodeId n) const;

  NodeId BinaryLeft(NodeId n) const { return first_child(n); }
  NodeId BinaryRight(NodeId n) const { return next_sibling(n); }

  /// Bytes used by parentheses + directory + label array.
  size_t MemoryUsage() const;

 private:
  /// Shared adoption tail of every constructor: move the bits in, freeze
  /// (a no-op for already-frozen external bits), build the BP directory.
  /// The caller has set labels_v_/num_nodes_ first.
  void Adopt(BitVector bits);

  /// BP position of the open paren of preorder node n.
  int64_t Pos(NodeId n) const {
    return static_cast<int64_t>(bp_.Select1(static_cast<size_t>(n) + 1));
  }
  /// Preorder node of the open paren at BP position p.
  NodeId NodeAt(int64_t p) const {
    return static_cast<NodeId>(bp_.Rank1(static_cast<size_t>(p) + 1)) - 1;
  }

  BitVector bp_;
  BalancedParens ops_;
  std::vector<LabelId> labels_;  // owned-mode storage; empty when mapped
  // Label reads go through the view: labels_.data() in owned mode, a
  // pointer into the mapped image in external mode.
  const LabelId* labels_v_ = nullptr;
  int32_t num_nodes_ = 0;
};

}  // namespace xpwqo

#endif  // XPWQO_INDEX_SUCCINCT_TREE_H_
