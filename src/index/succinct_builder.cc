#include "index/succinct_builder.h"

#include <utility>

#include "index/succinct_tree.h"

namespace xpwqo {

void SuccinctBuilder::ReserveNodes(size_t nodes) {
  bits_.Reserve(2 * nodes);
  labels_.reserve(nodes);
}

StatusOr<std::unique_ptr<SuccinctTree>> SuccinctBuilder::Finish() && {
  if (depth_ != 0) {
    return Status::InvalidArgument(
        "SuccinctBuilder::Finish with open elements");
  }
  if (labels_.empty()) {
    return Status::InvalidArgument("empty document");
  }
  return std::make_unique<SuccinctTree>(std::move(bits_), std::move(labels_));
}

}  // namespace xpwqo
