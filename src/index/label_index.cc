#include "index/label_index.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "index/succinct_tree.h"

namespace xpwqo {
namespace {

/// kNullNode (= -1) casts to the unsigned maximum, so min over unsigned
/// views treats "no candidate" as larger than every real node id.
inline uint32_t AsKey(NodeId n) { return static_cast<uint32_t>(n); }

}  // namespace

const PostingList LabelIndex::kEmptyList = [] {
  PostingList empty;
  empty.Freeze(0);
  return empty;
}();

void LabelIndex::Build(const LabelId* labels, int32_t num_nodes,
                       size_t num_labels) {
  postings_.resize(num_labels);
  for (NodeId n = 0; n < num_nodes; ++n) {
    postings_[labels[n]].Append(n);  // ids ascend: blocks grow in-pass
  }
  for (PostingList& list : postings_) list.Freeze(num_nodes);
}

LabelIndex::LabelIndex(const Document& doc) {
  postings_.resize(doc.alphabet().size());
  for (NodeId n = 0; n < doc.num_nodes(); ++n) {
    postings_[doc.label(n)].Append(n);
  }
  for (PostingList& list : postings_) list.Freeze(doc.num_nodes());
}

LabelIndex::LabelIndex(LabelPostingsBuilder&& builder)
    : postings_(std::move(builder.postings_)) {
  for (PostingList& list : postings_) list.Freeze(builder.num_nodes());
}

LabelIndex::LabelIndex(const SuccinctTree& tree) {
  // The succinct backend stores no alphabet; size the table by the largest
  // label present (queries for labels interned later just return empty).
  const std::span<const LabelId> labels = tree.label_array();
  LabelId max_label = -1;
  for (LabelId l : labels) max_label = std::max(max_label, l);
  Build(labels.data(), tree.num_nodes(),
        static_cast<size_t>(max_label + 1));
}

void LabelIndex::SerializeTo(std::string* out) const {
  const size_t base = out->size();
  const uint32_t num_lists = static_cast<uint32_t>(postings_.size());
  const uint32_t zero = 0;
  out->append(reinterpret_cast<const char*>(&num_lists), sizeof(num_lists));
  out->append(reinterpret_cast<const char*>(&zero), sizeof(zero));
  // Reserve the directory, fill it after the payloads land.
  const size_t dir_pos = out->size();
  out->append((static_cast<size_t>(num_lists) + 1) * sizeof(uint64_t), '\0');
  std::vector<uint64_t> offsets;
  offsets.reserve(static_cast<size_t>(num_lists) + 1);
  for (const PostingList& list : postings_) {
    offsets.push_back(out->size() - base);
    list.SerializeTo(out);
  }
  offsets.push_back(out->size() - base);
  std::memcpy(out->data() + dir_pos, offsets.data(),
              offsets.size() * sizeof(uint64_t));
}

StatusOr<LabelIndex> LabelIndex::FromImage(const uint8_t* data, size_t size,
                                           NodeId num_nodes) {
  XPWQO_DCHECK((reinterpret_cast<uintptr_t>(data) & 7) == 0);
  const auto corrupt = [](const char* what) {
    return Status::Corruption(std::string("label index: ") + what);
  };
  if (size < 8 || (size & 7) != 0) return corrupt("bad payload size");
  uint32_t num_lists, reserved;
  std::memcpy(&num_lists, data, sizeof(num_lists));
  std::memcpy(&reserved, data + 4, sizeof(reserved));
  if (reserved != 0) return corrupt("nonzero reserved field");
  // num_lists is attacker-sized before validation: bound the directory
  // arithmetic by the payload itself before touching it.
  if (num_lists > (size - 8) / sizeof(uint64_t)) {
    return corrupt("directory exceeds payload");
  }
  const size_t payload_start =
      8 + (static_cast<size_t>(num_lists) + 1) * sizeof(uint64_t);
  if (payload_start > size) return corrupt("directory exceeds payload");
  const uint64_t* dir = reinterpret_cast<const uint64_t*>(data + 8);
  if (dir[0] != payload_start) return corrupt("first list offset mismatch");
  if (dir[num_lists] != size) return corrupt("directory end mismatch");
  LabelIndex index;
  index.postings_.reserve(num_lists);
  for (uint32_t i = 0; i < num_lists; ++i) {
    const uint64_t off = dir[i];
    const uint64_t end = dir[i + 1];
    if ((off & 7) != 0 || end < off || end > size) {
      return corrupt("list offsets not monotone");
    }
    XPWQO_ASSIGN_OR_RETURN(
        PostingList list,
        PostingList::FromImage(data + off, static_cast<size_t>(end - off),
                               num_nodes));
    index.postings_.push_back(std::move(list));
  }
  return index;
}

int32_t LabelIndex::Count(LabelId label) const {
  if (label < 0 || label >= static_cast<LabelId>(postings_.size())) return 0;
  return postings_[label].size();
}

const PostingList& LabelIndex::Postings(LabelId label) const {
  if (label < 0 || label >= static_cast<LabelId>(postings_.size())) {
    return kEmptyList;
  }
  return postings_[label];
}

std::vector<NodeId> LabelIndex::Occurrences(LabelId label) const {
  std::vector<NodeId> out;
  Postings(label).Decode(&out);
  return out;
}

NodeId LabelIndex::FirstInRange(LabelId label, NodeId lo, NodeId hi) const {
  const NodeId first = Postings(label).FirstAtLeast(lo);
  return first != kNullNode && first < hi ? first : kNullNode;
}

NodeId LabelIndex::FirstInRange(const LabelSet& set, NodeId lo,
                                NodeId hi) const {
  XPWQO_DCHECK(set.IsFinite());
  uint32_t best = AsKey(kNullNode);
  for (LabelId l : set.FiniteMembers()) {
    // The merge is a branchless unsigned min (kNullNode's key is the
    // unsigned maximum), and a hit at lo is unbeatable.
    best = std::min(best, AsKey(Postings(l).FirstAtLeast(lo)));
    if (best == AsKey(lo)) break;
  }
  const NodeId first = static_cast<NodeId>(best);
  return first < hi ? first : kNullNode;
}

int32_t LabelIndex::CountInRange(LabelId label, NodeId lo, NodeId hi) const {
  if (hi <= lo) return 0;
  const PostingList& list = Postings(label);
  return list.RankBelow(hi) - list.RankBelow(lo);
}

bool LabelIndex::RangeContainsAny(const LabelSet& set, NodeId lo,
                                  NodeId hi) const {
  XPWQO_DCHECK(set.IsFinite());
  for (LabelId l : set.FiniteMembers()) {
    if (FirstInRange(l, lo, hi) != kNullNode) return true;
  }
  return false;
}

LabelIndex::SetCursor::SetCursor(const LabelIndex& index,
                                 const LabelSet& set) {
  XPWQO_DCHECK(set.IsFinite());
  for (LabelId l : set.FiniteMembers()) {
    const PostingList& list = index.Postings(l);
    if (list.empty()) continue;
    const PostingList::Cursor c(list);
    if (count_ < kInlineCursors) {
      inline_cursors_[count_] = c;
    } else {
      if (spill_.empty()) {
        spill_.assign(inline_cursors_, inline_cursors_ + kInlineCursors);
      }
      spill_.push_back(c);
    }
    ++count_;
  }
}

NodeId LabelIndex::SetCursor::First(NodeId lo, NodeId hi) {
  uint32_t best = AsKey(kNullNode);
  PostingList::Cursor* cursors = data();
  for (size_t i = 0; i < count_; ++i) {
    best = std::min(best, AsKey(cursors[i].SeekGE(lo)));
  }
  const NodeId first = static_cast<NodeId>(best);
  return first < hi ? first : kNullNode;
}

LabelIndex::MemoryStats LabelIndex::Memory() const {
  MemoryStats stats;
  stats.bytes = postings_.size() * sizeof(PostingList);
  stats.vector_bytes = postings_.size() * sizeof(std::vector<NodeId>);
  for (const PostingList& list : postings_) {
    stats.bytes += list.MemoryUsage();
    stats.vector_bytes +=
        list.UncompressedBytes() - sizeof(std::vector<NodeId>);
    if (list.empty()) continue;
    if (list.dense()) {
      ++stats.dense_labels;
    } else {
      ++stats.sparse_labels;
    }
  }
  return stats;
}

}  // namespace xpwqo
