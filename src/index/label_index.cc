#include "index/label_index.h"

#include <algorithm>

#include "index/succinct_tree.h"

namespace xpwqo {
namespace {

/// Index of the first element >= lo: gallop (exponential probe) from the
/// front, then binary-search the bracketed window. Jump enumeration probes
/// overwhelmingly near the start of each posting list, where this is
/// O(log(answer)) instead of O(log(list size)).
size_t GallopLowerBound(const std::vector<NodeId>& v, NodeId lo) {
  if (v.empty() || v.front() >= lo) return 0;
  size_t below = 0;  // v[below] < lo
  size_t probe = 1;
  while (probe < v.size() && v[probe] < lo) {
    below = probe;
    probe <<= 1;
  }
  const size_t end = std::min(probe + 1, v.size());
  return std::lower_bound(v.begin() + below + 1, v.begin() + end, lo) -
         v.begin();
}

/// Gallop within [pos, end) from the *current* cursor position. Same probe
/// pattern as GallopLowerBound, but anchored at pos so monotone callers pay
/// cost proportional to how far the cursor actually moves.
const NodeId* GallopFrom(const NodeId* pos, const NodeId* end, NodeId lo) {
  if (pos == end || *pos >= lo) return pos;
  size_t below = 0;  // pos[below] < lo
  size_t probe = 1;
  const size_t len = static_cast<size_t>(end - pos);
  while (probe < len && pos[probe] < lo) {
    below = probe;
    probe <<= 1;
  }
  return std::lower_bound(pos + below + 1, pos + std::min(probe + 1, len),
                          lo);
}

/// kNullNode (= -1) casts to the unsigned maximum, so min over unsigned
/// views treats "no candidate" as larger than every real node id.
inline uint32_t AsKey(NodeId n) { return static_cast<uint32_t>(n); }

}  // namespace

const std::vector<NodeId> LabelIndex::kEmpty;

void LabelIndex::Build(const LabelId* labels, int32_t num_nodes,
                       size_t num_labels) {
  postings_.resize(num_labels);
  for (NodeId n = 0; n < num_nodes; ++n) {
    postings_[labels[n]].push_back(n);  // ids ascend: lists stay sorted
  }
}

LabelIndex::LabelIndex(const Document& doc) {
  postings_.resize(doc.alphabet().size());
  for (NodeId n = 0; n < doc.num_nodes(); ++n) {
    postings_[doc.label(n)].push_back(n);  // ids ascend: lists stay sorted
  }
}

LabelIndex::LabelIndex(LabelPostingsBuilder&& builder)
    : postings_(std::move(builder.postings_)) {}

LabelIndex::LabelIndex(const SuccinctTree& tree) {
  // The succinct backend stores no alphabet; size the table by the largest
  // label present (queries for labels interned later just return empty).
  const std::vector<LabelId>& labels = tree.label_array();
  LabelId max_label = -1;
  for (LabelId l : labels) max_label = std::max(max_label, l);
  Build(labels.data(), tree.num_nodes(),
        static_cast<size_t>(max_label + 1));
}

int32_t LabelIndex::Count(LabelId label) const {
  if (label < 0 || label >= static_cast<LabelId>(postings_.size())) return 0;
  return static_cast<int32_t>(postings_[label].size());
}

const std::vector<NodeId>& LabelIndex::Occurrences(LabelId label) const {
  if (label < 0 || label >= static_cast<LabelId>(postings_.size())) {
    return kEmpty;
  }
  return postings_[label];
}

NodeId LabelIndex::FirstInRange(LabelId label, NodeId lo, NodeId hi) const {
  const std::vector<NodeId>& list = Occurrences(label);
  const size_t idx = GallopLowerBound(list, lo);
  if (idx == list.size() || list[idx] >= hi) return kNullNode;
  return list[idx];
}

NodeId LabelIndex::FirstInRange(const LabelSet& set, NodeId lo,
                                NodeId hi) const {
  XPWQO_DCHECK(set.IsFinite());
  uint32_t best = AsKey(kNullNode);
  for (LabelId l : set.FiniteMembers()) {
    // The scan ceiling shrinks to the best head so far, and a hit at lo is
    // unbeatable; the merge itself is a branchless unsigned min (kNullNode's
    // key is the unsigned maximum, so an empty best leaves hi in charge).
    const NodeId cand =
        FirstInRange(l, lo, static_cast<NodeId>(std::min(AsKey(hi), best)));
    best = std::min(best, AsKey(cand));
    if (best == AsKey(lo)) break;
  }
  const NodeId first = static_cast<NodeId>(best);
  return first < hi ? first : kNullNode;
}

int32_t LabelIndex::CountInRange(LabelId label, NodeId lo, NodeId hi) const {
  const std::vector<NodeId>& list = Occurrences(label);
  auto b = std::lower_bound(list.begin(), list.end(), lo);
  auto e = std::lower_bound(b, list.end(), hi);
  return static_cast<int32_t>(e - b);
}

bool LabelIndex::RangeContainsAny(const LabelSet& set, NodeId lo,
                                  NodeId hi) const {
  XPWQO_DCHECK(set.IsFinite());
  for (LabelId l : set.FiniteMembers()) {
    if (FirstInRange(l, lo, hi) != kNullNode) return true;
  }
  return false;
}

LabelIndex::SetCursor::SetCursor(const LabelIndex& index,
                                 const LabelSet& set) {
  XPWQO_DCHECK(set.IsFinite());
  for (LabelId l : set.FiniteMembers()) {
    const std::vector<NodeId>& list = index.Occurrences(l);
    if (list.empty()) continue;
    const Cursor c{list.data(), list.data() + list.size()};
    if (count_ < kInlineCursors) {
      inline_cursors_[count_] = c;
    } else {
      if (spill_.empty()) {
        spill_.assign(inline_cursors_, inline_cursors_ + kInlineCursors);
      }
      spill_.push_back(c);
    }
    ++count_;
  }
}

NodeId LabelIndex::SetCursor::First(NodeId lo, NodeId hi) {
  uint32_t best = AsKey(kNullNode);
  Cursor* cursors = data();
  for (size_t i = 0; i < count_; ++i) {
    Cursor& c = cursors[i];
    c.pos = GallopFrom(c.pos, c.end, lo);
    const NodeId head = c.pos == c.end ? kNullNode : *c.pos;
    best = std::min(best, AsKey(head));
  }
  const NodeId first = static_cast<NodeId>(best);
  return first < hi ? first : kNullNode;
}

size_t LabelIndex::MemoryUsage() const {
  size_t bytes = postings_.size() * sizeof(std::vector<NodeId>);
  for (const auto& list : postings_) bytes += list.size() * sizeof(NodeId);
  return bytes;
}

}  // namespace xpwqo
