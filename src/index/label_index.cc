#include "index/label_index.h"

#include <algorithm>

namespace xpwqo {

const std::vector<NodeId> LabelIndex::kEmpty;

LabelIndex::LabelIndex(const Document& doc) {
  postings_.resize(doc.alphabet().size());
  for (NodeId n = 0; n < doc.num_nodes(); ++n) {
    postings_[doc.label(n)].push_back(n);  // ids ascend: lists stay sorted
  }
}

int32_t LabelIndex::Count(LabelId label) const {
  if (label < 0 || label >= static_cast<LabelId>(postings_.size())) return 0;
  return static_cast<int32_t>(postings_[label].size());
}

const std::vector<NodeId>& LabelIndex::Occurrences(LabelId label) const {
  if (label < 0 || label >= static_cast<LabelId>(postings_.size())) {
    return kEmpty;
  }
  return postings_[label];
}

NodeId LabelIndex::FirstInRange(LabelId label, NodeId lo, NodeId hi) const {
  const std::vector<NodeId>& list = Occurrences(label);
  auto it = std::lower_bound(list.begin(), list.end(), lo);
  if (it == list.end() || *it >= hi) return kNullNode;
  return *it;
}

NodeId LabelIndex::FirstInRange(const LabelSet& set, NodeId lo,
                                NodeId hi) const {
  XPWQO_DCHECK(set.IsFinite());
  NodeId best = kNullNode;
  for (LabelId l : set.FiniteMembers()) {
    NodeId cand = FirstInRange(l, lo, hi);
    if (cand != kNullNode && (best == kNullNode || cand < best)) {
      best = cand;
    }
  }
  return best;
}

int32_t LabelIndex::CountInRange(LabelId label, NodeId lo, NodeId hi) const {
  const std::vector<NodeId>& list = Occurrences(label);
  auto b = std::lower_bound(list.begin(), list.end(), lo);
  auto e = std::lower_bound(b, list.end(), hi);
  return static_cast<int32_t>(e - b);
}

bool LabelIndex::RangeContainsAny(const LabelSet& set, NodeId lo,
                                  NodeId hi) const {
  XPWQO_DCHECK(set.IsFinite());
  for (LabelId l : set.FiniteMembers()) {
    if (FirstInRange(l, lo, hi) != kNullNode) return true;
  }
  return false;
}

size_t LabelIndex::MemoryUsage() const {
  size_t bytes = postings_.size() * sizeof(std::vector<NodeId>);
  for (const auto& list : postings_) bytes += list.size() * sizeof(NodeId);
  return bytes;
}

}  // namespace xpwqo
