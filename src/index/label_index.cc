#include "index/label_index.h"

#include <algorithm>

#include "index/succinct_tree.h"

namespace xpwqo {
namespace {

/// kNullNode (= -1) casts to the unsigned maximum, so min over unsigned
/// views treats "no candidate" as larger than every real node id.
inline uint32_t AsKey(NodeId n) { return static_cast<uint32_t>(n); }

}  // namespace

const PostingList LabelIndex::kEmptyList = [] {
  PostingList empty;
  empty.Freeze(0);
  return empty;
}();

void LabelIndex::Build(const LabelId* labels, int32_t num_nodes,
                       size_t num_labels) {
  postings_.resize(num_labels);
  for (NodeId n = 0; n < num_nodes; ++n) {
    postings_[labels[n]].Append(n);  // ids ascend: blocks grow in-pass
  }
  for (PostingList& list : postings_) list.Freeze(num_nodes);
}

LabelIndex::LabelIndex(const Document& doc) {
  postings_.resize(doc.alphabet().size());
  for (NodeId n = 0; n < doc.num_nodes(); ++n) {
    postings_[doc.label(n)].Append(n);
  }
  for (PostingList& list : postings_) list.Freeze(doc.num_nodes());
}

LabelIndex::LabelIndex(LabelPostingsBuilder&& builder)
    : postings_(std::move(builder.postings_)) {
  for (PostingList& list : postings_) list.Freeze(builder.num_nodes());
}

LabelIndex::LabelIndex(const SuccinctTree& tree) {
  // The succinct backend stores no alphabet; size the table by the largest
  // label present (queries for labels interned later just return empty).
  const std::vector<LabelId>& labels = tree.label_array();
  LabelId max_label = -1;
  for (LabelId l : labels) max_label = std::max(max_label, l);
  Build(labels.data(), tree.num_nodes(),
        static_cast<size_t>(max_label + 1));
}

int32_t LabelIndex::Count(LabelId label) const {
  if (label < 0 || label >= static_cast<LabelId>(postings_.size())) return 0;
  return postings_[label].size();
}

const PostingList& LabelIndex::Postings(LabelId label) const {
  if (label < 0 || label >= static_cast<LabelId>(postings_.size())) {
    return kEmptyList;
  }
  return postings_[label];
}

std::vector<NodeId> LabelIndex::Occurrences(LabelId label) const {
  std::vector<NodeId> out;
  Postings(label).Decode(&out);
  return out;
}

NodeId LabelIndex::FirstInRange(LabelId label, NodeId lo, NodeId hi) const {
  const NodeId first = Postings(label).FirstAtLeast(lo);
  return first != kNullNode && first < hi ? first : kNullNode;
}

NodeId LabelIndex::FirstInRange(const LabelSet& set, NodeId lo,
                                NodeId hi) const {
  XPWQO_DCHECK(set.IsFinite());
  uint32_t best = AsKey(kNullNode);
  for (LabelId l : set.FiniteMembers()) {
    // The merge is a branchless unsigned min (kNullNode's key is the
    // unsigned maximum), and a hit at lo is unbeatable.
    best = std::min(best, AsKey(Postings(l).FirstAtLeast(lo)));
    if (best == AsKey(lo)) break;
  }
  const NodeId first = static_cast<NodeId>(best);
  return first < hi ? first : kNullNode;
}

int32_t LabelIndex::CountInRange(LabelId label, NodeId lo, NodeId hi) const {
  if (hi <= lo) return 0;
  const PostingList& list = Postings(label);
  return list.RankBelow(hi) - list.RankBelow(lo);
}

bool LabelIndex::RangeContainsAny(const LabelSet& set, NodeId lo,
                                  NodeId hi) const {
  XPWQO_DCHECK(set.IsFinite());
  for (LabelId l : set.FiniteMembers()) {
    if (FirstInRange(l, lo, hi) != kNullNode) return true;
  }
  return false;
}

LabelIndex::SetCursor::SetCursor(const LabelIndex& index,
                                 const LabelSet& set) {
  XPWQO_DCHECK(set.IsFinite());
  for (LabelId l : set.FiniteMembers()) {
    const PostingList& list = index.Postings(l);
    if (list.empty()) continue;
    const PostingList::Cursor c(list);
    if (count_ < kInlineCursors) {
      inline_cursors_[count_] = c;
    } else {
      if (spill_.empty()) {
        spill_.assign(inline_cursors_, inline_cursors_ + kInlineCursors);
      }
      spill_.push_back(c);
    }
    ++count_;
  }
}

NodeId LabelIndex::SetCursor::First(NodeId lo, NodeId hi) {
  uint32_t best = AsKey(kNullNode);
  PostingList::Cursor* cursors = data();
  for (size_t i = 0; i < count_; ++i) {
    best = std::min(best, AsKey(cursors[i].SeekGE(lo)));
  }
  const NodeId first = static_cast<NodeId>(best);
  return first < hi ? first : kNullNode;
}

LabelIndex::MemoryStats LabelIndex::Memory() const {
  MemoryStats stats;
  stats.bytes = postings_.size() * sizeof(PostingList);
  stats.vector_bytes = postings_.size() * sizeof(std::vector<NodeId>);
  for (const PostingList& list : postings_) {
    stats.bytes += list.MemoryUsage();
    stats.vector_bytes +=
        list.UncompressedBytes() - sizeof(std::vector<NodeId>);
    if (list.empty()) continue;
    if (list.dense()) {
      ++stats.dense_labels;
    } else {
      ++stats.sparse_labels;
    }
  }
  return stats;
}

}  // namespace xpwqo
