#include "index/label_index.h"

#include <algorithm>

namespace xpwqo {
namespace {

/// Index of the first element >= lo: gallop (exponential probe) from the
/// front, then binary-search the bracketed window. Jump enumeration probes
/// overwhelmingly near the start of each posting list, where this is
/// O(log(answer)) instead of O(log(list size)).
size_t GallopLowerBound(const std::vector<NodeId>& v, NodeId lo) {
  if (v.empty() || v.front() >= lo) return 0;
  size_t below = 0;  // v[below] < lo
  size_t probe = 1;
  while (probe < v.size() && v[probe] < lo) {
    below = probe;
    probe <<= 1;
  }
  const size_t end = std::min(probe + 1, v.size());
  return std::lower_bound(v.begin() + below + 1, v.begin() + end, lo) -
         v.begin();
}

}  // namespace

const std::vector<NodeId> LabelIndex::kEmpty;

LabelIndex::LabelIndex(const Document& doc) {
  postings_.resize(doc.alphabet().size());
  for (NodeId n = 0; n < doc.num_nodes(); ++n) {
    postings_[doc.label(n)].push_back(n);  // ids ascend: lists stay sorted
  }
}

int32_t LabelIndex::Count(LabelId label) const {
  if (label < 0 || label >= static_cast<LabelId>(postings_.size())) return 0;
  return static_cast<int32_t>(postings_[label].size());
}

const std::vector<NodeId>& LabelIndex::Occurrences(LabelId label) const {
  if (label < 0 || label >= static_cast<LabelId>(postings_.size())) {
    return kEmpty;
  }
  return postings_[label];
}

NodeId LabelIndex::FirstInRange(LabelId label, NodeId lo, NodeId hi) const {
  const std::vector<NodeId>& list = Occurrences(label);
  const size_t idx = GallopLowerBound(list, lo);
  if (idx == list.size() || list[idx] >= hi) return kNullNode;
  return list[idx];
}

NodeId LabelIndex::FirstInRange(const LabelSet& set, NodeId lo,
                                NodeId hi) const {
  XPWQO_DCHECK(set.IsFinite());
  NodeId best = kNullNode;
  for (LabelId l : set.FiniteMembers()) {
    // Shrink hi to the best candidate so far: later labels only need to
    // search the narrower prefix, and a hit at lo is unbeatable.
    NodeId cand = FirstInRange(l, lo, hi);
    if (cand != kNullNode) {
      best = cand;
      if (cand == lo) break;
      hi = cand;
    }
  }
  return best;
}

int32_t LabelIndex::CountInRange(LabelId label, NodeId lo, NodeId hi) const {
  const std::vector<NodeId>& list = Occurrences(label);
  auto b = std::lower_bound(list.begin(), list.end(), lo);
  auto e = std::lower_bound(b, list.end(), hi);
  return static_cast<int32_t>(e - b);
}

bool LabelIndex::RangeContainsAny(const LabelSet& set, NodeId lo,
                                  NodeId hi) const {
  XPWQO_DCHECK(set.IsFinite());
  for (LabelId l : set.FiniteMembers()) {
    if (FirstInRange(l, lo, hi) != kNullNode) return true;
  }
  return false;
}

size_t LabelIndex::MemoryUsage() const {
  size_t bytes = postings_.size() * sizeof(std::vector<NodeId>);
  for (const auto& list : postings_) bytes += list.size() * sizeof(NodeId);
  return bytes;
}

}  // namespace xpwqo
