// BitVector with constant-time rank and near-constant-time select, the base
// layer of the succinct tree structures (the paper builds on Sadakane &
// Navarro's fully-functional succinct trees [18]).
//
// Rank uses a rank9-style two-level directory (Vigna, "Broadword
// implementation of rank/select queries"): one absolute 64-bit count per
// 512-bit superblock plus seven 9-bit relative word counts packed into a
// second 64-bit word, so Rank1 is two directory reads and one masked
// popcount — no position-dependent loop. Select keeps a two-level sampled
// directory: the superblock of every 512th one/zero, plus seven packed 8-bit
// superblock-local deltas locating every 64th one/zero within the sample.
// A query reads one hint and one delta word, leaving (almost always) a
// zero-or-one-superblock window for the binary search, then resolves the
// word through the packed counts and picks the bit with PDEP where
// available (portable broadword fallback otherwise).
#ifndef XPWQO_INDEX_BIT_VECTOR_H_
#define XPWQO_INDEX_BIT_VECTOR_H_

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#ifdef XPWQO_CPU_BMI2
#include <immintrin.h>
#endif

#include "util/check.h"

namespace xpwqo {

/// An immutable bit sequence with rank/select support. Construction is
/// two-phase: append bits, then Freeze() to build the rank/select directory.
/// Rank is O(1); select is O(log(superblocks per sample)) + O(1).
///
/// The bit words live either in an owned vector (the build path) or behind
/// an external pointer into a memory-mapped index image (FromExternal); the
/// rank/select directories are always owned and rebuilt in-memory on load —
/// they are small and derivable, so the on-disk image stores only the raw
/// words (see SerializeWordsTo).
class BitVector {
 public:
  BitVector() = default;
  BitVector(BitVector&& other) noexcept { *this = std::move(other); }
  BitVector& operator=(BitVector&& other) noexcept;
  BitVector(const BitVector& other) { *this = other; }
  BitVector& operator=(const BitVector& other);

  /// Appends one bit. Only valid before Freeze().
  void PushBack(bool bit) {
    XPWQO_DCHECK(!frozen_);
    if ((size_ & 63) == 0) {
      words_.push_back(0);
      data_ = words_.data();
    }
    if (bit) words_.back() |= (1ULL << (size_ & 63));
    ++size_;
  }

  /// Appends `count` copies of `bit`.
  void Append(bool bit, size_t count);

  /// Pre-sizes the word array for `bits` appended bits.
  void Reserve(size_t bits) { words_.reserve(bits / 64 + 2); }

  /// Builds the rank/select directory. Idempotent.
  void Freeze();

  /// Adopts `words` as the owned bit array for `size_bits` bits — the
  /// bulk-build path for callers that assemble words directly (one
  /// shift-or per set bit) instead of streaming PushBack calls. `words`
  /// needs ceil(size_bits / 64) data words; it is resized (zero-padded)
  /// here if short. Returns a frozen vector with directories built.
  static BitVector FromWords(std::vector<uint64_t> words, size_t size_bits);

  /// Wraps `words` — the raw bit words as written by SerializeWordsTo:
  /// ceil(size_bits/64) data words plus one zero pad word, 8-byte aligned —
  /// without copying, and builds the rank/select directories in-memory.
  /// The pointed-to memory must outlive the BitVector (the persist layer
  /// keeps the whole mapped image alive through the Engine).
  static BitVector FromExternal(const uint64_t* words, size_t size_bits);

  /// Bytes SerializeWordsTo appends for a vector of `size_bits` bits.
  static size_t SerializedWordBytes(size_t size_bits) {
    return ((size_bits + 63) / 64 + 1) * sizeof(uint64_t);
  }

  /// Appends the raw bit words (data words + the zero pad word) to `out`.
  /// Requires Freeze(). Byte-for-byte deterministic: an external vector
  /// re-serializes to exactly the bytes it wraps.
  void SerializeWordsTo(std::string* out) const;

  size_t size() const { return size_; }
  bool frozen() const { return frozen_; }
  /// True when the words live in external (mapped) memory.
  bool external() const { return external_; }

  bool Get(size_t i) const {
    XPWQO_DCHECK(i < size_);
    return (data_[i >> 6] >> (i & 63)) & 1;
  }

  /// Number of 1-bits in [0, i). Requires Freeze(); i <= size(). O(1): one
  /// superblock read, one packed-count read, one masked popcount.
  size_t Rank1(size_t i) const {
    XPWQO_DCHECK(frozen_);
    XPWQO_DCHECK(i <= size_);
    const size_t w = i >> 6;
    const size_t b = w >> 3;  // 512-bit superblock
    const size_t t = w & 7;
    // Branchless relative count: field t-1 holds ones in words [0, t) of
    // the superblock. For t == 0 the shift amount becomes 63, which lands
    // on the single unused top bit of the packed word — always zero.
    const uint64_t rel = (rank_[2 * b + 1] >> (9 * ((t + 7) & 7))) & 0x1FF;
#ifdef XPWQO_CPU_BMI2
    const uint64_t prefix = _bzhi_u64(data_[w], static_cast<uint32_t>(i & 63));
#else
    const uint64_t prefix = data_[w] & ((1ULL << (i & 63)) - 1);
#endif
    return static_cast<size_t>(rank_[2 * b] + rel) + std::popcount(prefix);
  }
  /// Number of 0-bits in [0, i).
  size_t Rank0(size_t i) const { return i - Rank1(i); }

  /// Position of the k-th 1-bit (k >= 1). Requires k <= Rank1(size()).
  size_t Select1(size_t k) const;
  /// Position of the k-th 0-bit (k >= 1).
  size_t Select0(size_t k) const;

  /// Total 1-bits.
  size_t CountOnes() const { return total_ones_; }

  /// Raw 64-bit word (padded with zeros past size()).
  uint64_t Word(size_t w) const { return data_[w]; }
  size_t NumWords() const { return num_words_; }

  /// Bytes used by the bits plus the rank/select directory.
  size_t MemoryUsage() const;

 private:
  static constexpr size_t kWordsPerBlock = 8;   // 512-bit superblocks
  static constexpr size_t kSelectSample = 512;  // ones/zeros per select hint
  static constexpr size_t kSelectSub = 64;      // ones/zeros per sub-sample

  size_t NumBlocks() const { return rank_.size() / 2; }
  /// Ones strictly before superblock b.
  uint64_t BlockRank(size_t b) const { return rank_[2 * b]; }
  /// Zeros strictly before superblock b (padding past size() never counts
  /// because callers bound k by the true zero total).
  uint64_t BlockRank0(size_t b) const {
    return static_cast<uint64_t>(b) * kWordsPerBlock * 64 - rank_[2 * b];
  }

  /// Rebuilds the rank and select directories from data_/size_ (the shared
  /// tail of Freeze() and FromExternal()).
  void BuildDirectories();

  std::vector<uint64_t> words_;  // one zero pad word appended by Freeze()
  // All reads go through data_: words_.data() in owned mode, a pointer into
  // a mapped image in external mode. PushBack keeps it in sync across
  // vector reallocations.
  const uint64_t* data_ = nullptr;
  // Two entries per 512-bit superblock: [2b] = absolute ones before the
  // superblock, [2b+1] = seven packed 9-bit cumulative word counts.
  std::vector<uint64_t> rank_;
  std::vector<uint32_t> select1_hint_;  // superblock of one #(j*sample+1)
  std::vector<uint32_t> select0_hint_;  // superblock of zero #(j*sample+1)
  // Second select level: per sample j, seven packed 8-bit deltas. Byte m-1
  // is the superblock of one/zero #(j*sample + m*sub + 1) relative to the
  // sample's hint superblock, saturated at 255 (a saturated upper bound
  // falls back to the next hint). One read narrows the binary-search window
  // from a whole sample to a sub-sample.
  std::vector<uint64_t> select1_sub_;
  std::vector<uint64_t> select0_sub_;
  size_t size_ = 0;
  size_t num_words_ = 0;  // data words, excluding the pad word
  size_t total_ones_ = 0;
  bool frozen_ = false;
  bool external_ = false;  // words live in mapped memory, not words_
};

}  // namespace xpwqo

#endif  // XPWQO_INDEX_BIT_VECTOR_H_
