// BitVector with constant-time rank and near-constant-time select, the base
// layer of the succinct tree structures (the paper builds on Sadakane &
// Navarro's fully-functional succinct trees [18]).
#ifndef XPWQO_INDEX_BIT_VECTOR_H_
#define XPWQO_INDEX_BIT_VECTOR_H_

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace xpwqo {

/// An immutable bit sequence with rank/select support. Construction is
/// two-phase: append bits, then Freeze() to build the rank directory
/// (superblocks of 512 bits). Rank is O(1); select is O(log #superblocks)
/// plus an in-block scan.
class BitVector {
 public:
  BitVector() = default;

  /// Appends one bit. Only valid before Freeze().
  void PushBack(bool bit);

  /// Appends `count` copies of `bit`.
  void Append(bool bit, size_t count);

  /// Builds the rank/select directory. Idempotent.
  void Freeze();

  size_t size() const { return size_; }
  bool frozen() const { return frozen_; }

  bool Get(size_t i) const {
    XPWQO_DCHECK(i < size_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  /// Number of 1-bits in [0, i). Requires Freeze(); i <= size().
  size_t Rank1(size_t i) const;
  /// Number of 0-bits in [0, i).
  size_t Rank0(size_t i) const { return i - Rank1(i); }

  /// Position of the k-th 1-bit (k >= 1). Requires k <= Rank1(size()).
  size_t Select1(size_t k) const;
  /// Position of the k-th 0-bit (k >= 1).
  size_t Select0(size_t k) const;

  /// Total 1-bits.
  size_t CountOnes() const { return total_ones_; }

  /// Raw 64-bit word (padded with zeros past size()).
  uint64_t Word(size_t w) const { return words_[w]; }
  size_t NumWords() const { return words_.size(); }

  /// Bytes used by the bits plus the rank directory.
  size_t MemoryUsage() const;

 private:
  static constexpr size_t kWordsPerBlock = 8;  // 512-bit superblocks

  std::vector<uint64_t> words_;
  std::vector<uint64_t> block_rank_;  // ones before each superblock
  size_t size_ = 0;
  size_t total_ones_ = 0;
  bool frozen_ = false;
};

}  // namespace xpwqo

#endif  // XPWQO_INDEX_BIT_VECTOR_H_
