// PostingList: one label's sorted occurrence list in compressed form, the
// storage behind LabelIndex's jumping primitives (FirstInRange /
// CountInRange / SetCursor). Plain vector<NodeId> postings were the largest
// non-label structure of the index — 4 bytes per occurrence regardless of
// gap size — which undercut the paper's space argument once the tree itself
// fit in ~2 bits/node.
//
// Two representations, chosen per label when the list is frozen:
//
//   sparse  32-entry delta blocks. A skip table stores each block's first
//           id and the byte offset of its delta stream, so a seek gallops
//           over skip entries (no decoding) and decodes at most one block.
//           In-block gaps are LEB128 varints — rare labels on a large
//           document have multi-thousand gaps that still fit 2-3 bytes.
//           The block size trades skip-table overhead (8 bytes per block =
//           2 bits/entry at 32) against the in-block linear decode a
//           stateless seek pays; 32 keeps jump-heavy evaluation within 5%
//           of the uncompressed vectors while still compressing >4x.
//
//   dense   a rank-indexed bitmap over the node-id universe, reusing
//           BitVector: CountInRange is two O(1) ranks and FirstInRange one
//           rank + one select. Chosen when occurrences fill more than
//           1/kDenseInverse of the universe, where bitmap bytes undercut
//           even 1-byte varints.
//
// Appending is strictly-ascending and compresses in-pass (the streaming
// LabelPostingsBuilder grows blocks directly from parser events; no
// uncompressed list ever exists). Freeze() makes the list immutable and
// picks the representation.
#ifndef XPWQO_INDEX_POSTINGS_H_
#define XPWQO_INDEX_POSTINGS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "index/bit_vector.h"
#include "tree/types.h"
#include "util/check.h"
#include "util/status.h"

namespace xpwqo {

/// One label's compressed, immutable-after-Freeze occurrence list.
class PostingList {
 public:
  static constexpr uint32_t kBlockShift = 5;
  static constexpr uint32_t kBlockSize = 1u << kBlockShift;  // ids per block
  /// Dense when count * kDenseInverse >= universe: at that fill the bitmap
  /// (universe/8 bytes + ~25% rank directory) beats even 1-byte deltas.
  static constexpr uint32_t kDenseInverse = 6;

  /// Freeze-time representation override (tests force both paths onto the
  /// same data; production callers use kAuto).
  enum class Rep { kAuto, kSparse, kDense };

  PostingList() = default;
  PostingList(PostingList&& other) noexcept { *this = std::move(other); }
  PostingList& operator=(PostingList&& other) noexcept;
  PostingList(const PostingList& other) { *this = other; }
  PostingList& operator=(const PostingList& other);

  /// Appends an id strictly greater than every previous one. Compresses
  /// in-pass: only the current block tail state lives outside the encoded
  /// bytes. Only valid before Freeze().
  void Append(NodeId id) {
    XPWQO_DCHECK(!frozen_);
    XPWQO_DCHECK(id > last_);
    if ((count_ & (kBlockSize - 1)) == 0) {
      skip_first_.push_back(id);
      skip_offset_.push_back(static_cast<uint32_t>(deltas_.size()));
    } else {
      uint32_t d = static_cast<uint32_t>(id - last_);
      while (d >= 0x80) {
        deltas_.push_back(static_cast<uint8_t>(d | 0x80));
        d >>= 7;
      }
      deltas_.push_back(static_cast<uint8_t>(d));
    }
    last_ = id;
    ++count_;
  }

  /// Picks the representation (bitmap needs the id universe — the document's
  /// node count) and makes the list immutable. Idempotent.
  void Freeze(NodeId universe, Rep rep = Rep::kAuto);

  /// Appends the frozen list's persistent-image payload to `out`: a 16-byte
  /// header {u32 count, u32 flags (bit0 = dense), u32 last, u32 aux}, then
  /// for dense lists {u64 size_bits, raw bitmap words incl. pad}, for
  /// sparse lists {skip_first[nb] i32, skip_offset[nb] u32, delta bytes},
  /// zero-padded to an 8-byte multiple (aux = delta byte count for sparse,
  /// 0 for dense; nb = ceil(count / kBlockSize)). Deterministic: a list
  /// loaded via FromImage re-serializes byte-identically.
  void SerializeTo(std::string* out) const;

  /// Wraps an image payload written by SerializeTo without copying: the
  /// skip tables / delta stream / bitmap words stay in the mapped bytes,
  /// which must outlive the list. `data` must be 8-byte aligned and
  /// `universe` the owning document's node count. Shape and bounds are
  /// validated (sizes, monotone skip tables, ids inside the universe) and
  /// violations return kCorruption; byte-level integrity is the caller's
  /// checksum responsibility.
  static StatusOr<PostingList> FromImage(const uint8_t* data, size_t size,
                                         NodeId universe);

  int32_t size() const { return static_cast<int32_t>(count_); }
  bool empty() const { return count_ == 0; }
  bool frozen() const { return frozen_; }
  bool dense() const { return dense_; }

  /// Smallest stored id >= lo, or kNullNode. Requires Freeze(). Sparse:
  /// binary search of the skip table + one block decode; dense: one rank +
  /// one select.
  NodeId FirstAtLeast(NodeId lo) const;

  /// Number of stored ids < hi. Sparse: skip-table search + partial block
  /// decode; dense: one rank.
  int32_t RankBelow(NodeId hi) const;

  /// Decompresses the whole list (tests, one-shot consumers).
  void Decode(std::vector<NodeId>* out) const;

  /// Monotone streaming reader: SeekGE gallops over skip entries past whole
  /// blocks, then decodes forward from its current position — an
  /// enumeration pays amortized movement, not a fresh front-search per
  /// probe. Copyable, ~40 bytes, no heap state (the merged SetCursor in
  /// eval/topdown frames stores several inline).
  class Cursor {
   public:
    Cursor() = default;
    explicit Cursor(const PostingList& list);

    /// Smallest stored id >= lo, or kNullNode once exhausted. `lo` must be
    /// non-decreasing across calls.
    NodeId SeekGE(NodeId lo);

   private:
    const PostingList* list_ = nullptr;
    const uint8_t* next_ = nullptr;  // sparse: next varint of the block
    NodeId cur_ = kNullNode;         // current head; kNullNode = exhausted
    uint32_t index_ = 0;             // global index of cur_
  };

  /// Bytes of the frozen representation (encoded data + skip/rank tables).
  size_t MemoryUsage() const;
  /// What the same list costs as a plain std::vector<NodeId> — the
  /// pre-compression baseline reported by the bench memory accounting.
  size_t UncompressedBytes() const {
    return sizeof(std::vector<NodeId>) + count_ * sizeof(NodeId);
  }

 private:
  friend class Cursor;

  uint32_t NumBlocks() const { return num_blocks_; }
  /// Ids stored in block b (only the last block can be partial).
  uint32_t BlockCount(uint32_t b) const {
    return b + 1 < NumBlocks() ? kBlockSize
                               : count_ - (b << kBlockShift);
  }
  /// Largest block whose first id is <= bound, assuming skip_first_[0] <=
  /// bound. Plain binary search (the galloping variant lives in Cursor,
  /// where a current position to gallop from exists).
  uint32_t FindBlock(NodeId bound) const;

  /// Points the frozen-reader views at the owned vectors (no-op for
  /// external lists, whose views target the mapped image).
  void SyncViews();

  // Sparse representation; doubles as the pre-Freeze growing state. Owned
  // storage only — empty for external (image-backed) lists.
  std::vector<NodeId> skip_first_;     // per block: first id
  std::vector<uint32_t> skip_offset_;  // per block: delta-stream start
  std::vector<uint8_t> deltas_;        // varint gaps, kBlockSize-1 per block
  // Dense representation (frozen bitmaps only).
  BitVector bits_;

  // Frozen readers go through these views: the vectors above in built mode,
  // pointers into the mapped image in external mode.
  const NodeId* skip_first_v_ = nullptr;
  const uint32_t* skip_offset_v_ = nullptr;
  const uint8_t* deltas_v_ = nullptr;
  uint32_t num_blocks_ = 0;
  uint32_t delta_bytes_ = 0;

  uint32_t count_ = 0;
  NodeId last_ = kNullNode;  // largest appended id
  bool dense_ = false;
  bool frozen_ = false;
  bool external_ = false;  // views target mapped memory, not the vectors
};

}  // namespace xpwqo

#endif  // XPWQO_INDEX_POSTINGS_H_
