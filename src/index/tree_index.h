// TreeIndex: the jumping primitives of Definition 3.2 over a tree backend
// and its LabelIndex, plus the "topmost labeled nodes" enumeration derived
// from them (d_t to find the first, f_t to step over binary subtrees).
//
// The index is backend-parameterized: it runs over either the pointer-based
// Document or the SuccinctTree. Node identifiers are preorder ranks in both,
// so the posting lists are identical; only the navigation primitives
// (BinaryEnd/XmlEnd/parent/first_child) differ — O(1) array reads on the
// pointer backend, balanced-parentheses kernel calls (FindClose / excess
// search / Enclose) on the succinct one. All node identifiers are preorder
// ranks, and the *binary* tree of the paper is the first-child/next-sibling
// view: the binary subtree of n spans the preorder range [n, BinaryEnd(n)).
#ifndef XPWQO_INDEX_TREE_INDEX_H_
#define XPWQO_INDEX_TREE_INDEX_H_

#include <memory>
#include <utility>

#include "index/label_index.h"
#include "index/succinct_tree.h"
#include "tree/document.h"
#include "tree/label_set.h"

namespace xpwqo {

/// Jump functions over one document, on either backend. Holds a reference
/// to the backing tree, which must outlive the index.
class TreeIndex {
 public:
  explicit TreeIndex(const Document& doc) : doc_(&doc), labels_(doc) {}
  explicit TreeIndex(const SuccinctTree& tree)
      : tree_(&tree), labels_(tree) {}
  /// From-builder: adopts a LabelIndex grown during streaming ingestion
  /// (LabelPostingsBuilder) instead of re-scanning the label array.
  TreeIndex(const SuccinctTree& tree, LabelIndex labels)
      : tree_(&tree), labels_(std::move(labels)) {}

  /// The pointer backend, or null when succinct-backed (and vice versa).
  const Document* doc() const { return doc_; }
  const SuccinctTree* succinct() const { return tree_; }
  const LabelIndex& labels() const { return labels_; }

  /// d_t(n, L): first *binary-tree* descendant of n (strictly below, in
  /// document order) whose label is in L, or kNullNode.
  NodeId FirstBinaryDescendant(NodeId n, const LabelSet& set) const;

  /// First node of [n, BinaryEnd(n)) — n included — with label in L.
  NodeId FirstInBinarySubtree(NodeId n, const LabelSet& set) const;

  /// f_t(m, L, scope): first *binary* following node of m (document order,
  /// not a binary descendant of m) that is a binary descendant of `scope`
  /// and has a label in L. With d_t this enumerates the topmost L-labeled
  /// nodes of scope's binary subtree:
  ///   first = FirstBinaryDescendant(scope, L)
  ///   next  = NextTopmost(prev, L, scope)
  NodeId NextTopmost(NodeId m, const LabelSet& set, NodeId scope) const;

  /// NextTopmost with the scope's binary end precomputed. Enumeration loops
  /// should hoist BinaryEnd(scope) once and call this variant, so the scope
  /// boundary is not re-derived on every jump. (Hot loops that enumerate a
  /// whole chain should additionally hoist a LabelIndex::SetCursor and probe
  /// it with BinaryEnd(m) directly — see eval.cc / topdown_jump.cc.)
  NodeId NextTopmostBefore(NodeId m, const LabelSet& set,
                           NodeId scope_end) const;

  /// l_t(n, L): first node on the left-most binary path below n (the
  /// first-child chain) with label in L, or kNullNode. O(chain length).
  NodeId LeftPathFirst(NodeId n, const LabelSet& set) const;

  /// r_t(n, L): first node on the right-most binary path below n (the
  /// next-sibling chain) with label in L, or kNullNode. Uses the label
  /// index to skip over sibling subtrees.
  NodeId RightPathFirst(NodeId n, const LabelSet& set) const;

  /// Backend-dispatched navigation (one predictable branch; the posting
  /// probes dominate every caller's cost).
  NodeId BinaryEnd(NodeId n) const {
    return doc_ != nullptr ? doc_->BinaryEnd(n) : tree_->BinaryEnd(n);
  }
  NodeId XmlEnd(NodeId n) const {
    return doc_ != nullptr ? doc_->XmlEnd(n) : tree_->XmlEnd(n);
  }
  NodeId Parent(NodeId n) const {
    return doc_ != nullptr ? doc_->parent(n) : tree_->parent(n);
  }
  NodeId FirstChild(NodeId n) const {
    return doc_ != nullptr ? doc_->first_child(n) : tree_->first_child(n);
  }
  NodeId NextSibling(NodeId n) const {
    return doc_ != nullptr ? doc_->next_sibling(n) : tree_->next_sibling(n);
  }
  LabelId Label(NodeId n) const {
    return doc_ != nullptr ? doc_->label(n) : tree_->label(n);
  }

  /// Global count of a label (O(1), used by the hybrid strategy).
  int32_t Count(LabelId label) const { return labels_.Count(label); }

 private:
  const Document* doc_ = nullptr;
  const SuccinctTree* tree_ = nullptr;
  LabelIndex labels_;
};

/// Static-polymorphism views so the evaluators can run over either the
/// pointer-based Document or the SuccinctTree backend (same NodeIds).
struct PointerTreeView {
  const Document* doc;

  int32_t num_nodes() const { return doc->num_nodes(); }
  NodeId root() const { return doc->root(); }
  LabelId label(NodeId n) const { return doc->label(n); }
  NodeId Left(NodeId n) const { return doc->BinaryLeft(n); }
  NodeId Right(NodeId n) const { return doc->BinaryRight(n); }
  NodeId Parent(NodeId n) const { return doc->parent(n); }
  NodeId XmlEnd(NodeId n) const { return doc->XmlEnd(n); }
  NodeId BinaryEnd(NodeId n) const { return doc->BinaryEnd(n); }
};

struct SuccinctTreeView {
  const SuccinctTree* tree;

  int32_t num_nodes() const { return tree->num_nodes(); }
  NodeId root() const { return tree->root(); }
  LabelId label(NodeId n) const { return tree->label(n); }
  NodeId Left(NodeId n) const { return tree->BinaryLeft(n); }
  NodeId Right(NodeId n) const { return tree->BinaryRight(n); }
  NodeId Parent(NodeId n) const { return tree->parent(n); }
  NodeId XmlEnd(NodeId n) const { return tree->XmlEnd(n); }
  NodeId BinaryEnd(NodeId n) const { return tree->BinaryEnd(n); }
};

}  // namespace xpwqo

#endif  // XPWQO_INDEX_TREE_INDEX_H_
