// TreeIndex: the jumping primitives of Definition 3.2 over a Document and
// its LabelIndex, plus the "topmost labeled nodes" enumeration derived from
// them (d_t to find the first, f_t to step over binary subtrees).
//
// All node identifiers are preorder ranks, and the *binary* tree of the
// paper is the first-child/next-sibling view: the binary subtree of n spans
// the preorder range [n, BinaryEnd(n)).
#ifndef XPWQO_INDEX_TREE_INDEX_H_
#define XPWQO_INDEX_TREE_INDEX_H_

#include <memory>

#include "index/label_index.h"
#include "index/succinct_tree.h"
#include "tree/document.h"
#include "tree/label_set.h"

namespace xpwqo {

/// Jump functions over one document. Holds a reference to the Document,
/// which must outlive the index.
class TreeIndex {
 public:
  explicit TreeIndex(const Document& doc) : doc_(&doc), labels_(doc) {}

  const Document& doc() const { return *doc_; }
  const LabelIndex& labels() const { return labels_; }

  /// d_t(n, L): first *binary-tree* descendant of n (strictly below, in
  /// document order) whose label is in L, or kNullNode.
  NodeId FirstBinaryDescendant(NodeId n, const LabelSet& set) const;

  /// First node of [n, BinaryEnd(n)) — n included — with label in L.
  NodeId FirstInBinarySubtree(NodeId n, const LabelSet& set) const;

  /// f_t(m, L, scope): first *binary* following node of m (document order,
  /// not a binary descendant of m) that is a binary descendant of `scope`
  /// and has a label in L. With d_t this enumerates the topmost L-labeled
  /// nodes of scope's binary subtree:
  ///   first = FirstBinaryDescendant(scope, L)
  ///   next  = NextTopmost(prev, L, scope)
  NodeId NextTopmost(NodeId m, const LabelSet& set, NodeId scope) const;

  /// NextTopmost with the scope's binary end precomputed. Enumeration loops
  /// should hoist BinaryEnd(scope) once and call this variant, so the scope
  /// boundary is not re-derived on every jump.
  NodeId NextTopmostBefore(NodeId m, const LabelSet& set,
                           NodeId scope_end) const;

  /// l_t(n, L): first node on the left-most binary path below n (the
  /// first-child chain) with label in L, or kNullNode. O(chain length).
  NodeId LeftPathFirst(NodeId n, const LabelSet& set) const;

  /// r_t(n, L): first node on the right-most binary path below n (the
  /// next-sibling chain) with label in L, or kNullNode. Uses the label
  /// index to skip over sibling subtrees.
  NodeId RightPathFirst(NodeId n, const LabelSet& set) const;

  /// Global count of a label (O(1), used by the hybrid strategy).
  int32_t Count(LabelId label) const { return labels_.Count(label); }

 private:
  const Document* doc_;
  LabelIndex labels_;
};

/// Static-polymorphism views so the evaluators can run over either the
/// pointer-based Document or the SuccinctTree backend (same NodeIds).
struct PointerTreeView {
  const Document* doc;

  int32_t num_nodes() const { return doc->num_nodes(); }
  NodeId root() const { return doc->root(); }
  LabelId label(NodeId n) const { return doc->label(n); }
  NodeId Left(NodeId n) const { return doc->BinaryLeft(n); }
  NodeId Right(NodeId n) const { return doc->BinaryRight(n); }
  NodeId Parent(NodeId n) const { return doc->parent(n); }
  NodeId XmlEnd(NodeId n) const { return doc->XmlEnd(n); }
  NodeId BinaryEnd(NodeId n) const { return doc->BinaryEnd(n); }
};

struct SuccinctTreeView {
  const SuccinctTree* tree;

  int32_t num_nodes() const { return tree->num_nodes(); }
  NodeId root() const { return tree->root(); }
  LabelId label(NodeId n) const { return tree->label(n); }
  NodeId Left(NodeId n) const { return tree->BinaryLeft(n); }
  NodeId Right(NodeId n) const { return tree->BinaryRight(n); }
  NodeId Parent(NodeId n) const { return tree->parent(n); }
  NodeId XmlEnd(NodeId n) const { return tree->XmlEnd(n); }
  NodeId BinaryEnd(NodeId n) const { return tree->BinaryEnd(n); }
};

}  // namespace xpwqo

#endif  // XPWQO_INDEX_TREE_INDEX_H_
