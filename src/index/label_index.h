// LabelIndex: per-label sorted preorder occurrence lists. This is the
// structure behind the paper's jumping primitives: finding the first node
// with a label in L inside a preorder range costs O(|L| log n), and global
// label counts (used by the hybrid strategy to pick a starting label) are
// O(1).
#ifndef XPWQO_INDEX_LABEL_INDEX_H_
#define XPWQO_INDEX_LABEL_INDEX_H_

#include <vector>

#include "tree/document.h"
#include "tree/label_set.h"

namespace xpwqo {

/// Immutable posting lists of node ids (== preorder ranks) per label.
class LabelIndex {
 public:
  explicit LabelIndex(const Document& doc);

  /// Number of occurrences of `label` (0 for labels interned after the
  /// document was built).
  int32_t Count(LabelId label) const;

  /// All occurrences of `label` in document order.
  const std::vector<NodeId>& Occurrences(LabelId label) const;

  /// Smallest node id in [lo, hi) with the given label, or kNullNode.
  NodeId FirstInRange(LabelId label, NodeId lo, NodeId hi) const;

  /// Smallest node id in [lo, hi) whose label is in `set`, or kNullNode.
  /// Requires set.IsFinite(); co-finite sets cannot be jumped to (callers
  /// fall back to stepping, as the paper's engine does). Each label probe
  /// gallops from the front of its posting list, and the scan ceiling
  /// shrinks to the best candidate found so far.
  NodeId FirstInRange(const LabelSet& set, NodeId lo, NodeId hi) const;

  /// Number of occurrences of `label` within [lo, hi).
  int32_t CountInRange(LabelId label, NodeId lo, NodeId hi) const;

  /// True if any label of the finite `set` occurs within [lo, hi). Shares
  /// the galloping probe with FirstInRange but stops at the first hit.
  bool RangeContainsAny(const LabelSet& set, NodeId lo, NodeId hi) const;

  size_t MemoryUsage() const;

 private:
  std::vector<std::vector<NodeId>> postings_;
  static const std::vector<NodeId> kEmpty;
};

}  // namespace xpwqo

#endif  // XPWQO_INDEX_LABEL_INDEX_H_
