// LabelIndex: per-label sorted preorder occurrence lists. This is the
// structure behind the paper's jumping primitives: finding the first node
// with a label in L inside a preorder range costs O(|L| log n), and global
// label counts (used by the hybrid strategy to pick a starting label) are
// O(1).
//
// Posting lists can be built from either tree backend: the pointer Document
// or a SuccinctTree's label array — node ids are preorder ranks in both, so
// the lists are identical and no pointer tree has to be materialized.
#ifndef XPWQO_INDEX_LABEL_INDEX_H_
#define XPWQO_INDEX_LABEL_INDEX_H_

#include <string_view>
#include <vector>

#include "tree/document.h"
#include "tree/event_sink.h"
#include "tree/label_set.h"

namespace xpwqo {

class SuccinctTree;
class LabelPostingsBuilder;

/// Immutable posting lists of node ids (== preorder ranks) per label.
class LabelIndex {
 public:
  explicit LabelIndex(const Document& doc);
  /// Builds the postings straight from the succinct backend's label array.
  explicit LabelIndex(const SuccinctTree& tree);
  /// Adopts posting lists grown incrementally during streaming ingestion.
  explicit LabelIndex(LabelPostingsBuilder&& builder);

  /// Number of occurrences of `label` (0 for labels interned after the
  /// document was built).
  int32_t Count(LabelId label) const;

  /// All occurrences of `label` in document order.
  const std::vector<NodeId>& Occurrences(LabelId label) const;

  /// Smallest node id in [lo, hi) with the given label, or kNullNode.
  NodeId FirstInRange(LabelId label, NodeId lo, NodeId hi) const;

  /// Smallest node id in [lo, hi) whose label is in `set`, or kNullNode.
  /// Requires set.IsFinite(); co-finite sets cannot be jumped to (callers
  /// fall back to stepping, as the paper's engine does). Each label probe
  /// gallops to its posting head at or after lo; the heads merge through a
  /// branchless unsigned min (kNullNode = -1 ranks above every real id).
  NodeId FirstInRange(const LabelSet& set, NodeId lo, NodeId hi) const;

  /// Number of occurrences of `label` within [lo, hi).
  int32_t CountInRange(LabelId label, NodeId lo, NodeId hi) const;

  /// True if any label of the finite `set` occurs within [lo, hi). Shares
  /// the galloping probe with FirstInRange but stops at the first hit.
  bool RangeContainsAny(const LabelSet& set, NodeId lo, NodeId hi) const;

  /// Stateful merged probe over one finite LabelSet's posting lists, for
  /// enumeration loops whose lower bound only moves forward (topmost-node
  /// chains: each jump starts at the previous subtree's BinaryEnd). Each
  /// per-label cursor advances monotonically — a gallop from its *current*
  /// position — so a whole enumeration pays O(matches visited) amortized
  /// list movement instead of |L| fresh front-gallops per jump.
  class SetCursor {
   public:
    SetCursor() = default;
    SetCursor(const LabelIndex& index, const LabelSet& set);

    /// Smallest node id >= lo across the set's lists that is < hi, or
    /// kNullNode. `lo` must be non-decreasing across calls.
    NodeId First(NodeId lo, NodeId hi);

   private:
    struct Cursor {
      const NodeId* pos;
      const NodeId* end;
    };
    /// Essential-label sets are almost always tiny; an inline buffer keeps
    /// cursor construction allocation-free for them (one SetCursor is
    /// built per jump region, including regions that prove empty).
    static constexpr size_t kInlineCursors = 4;
    Cursor* data() {
      return spill_.empty() ? inline_cursors_ : spill_.data();
    }

    Cursor inline_cursors_[kInlineCursors];
    size_t count_ = 0;
    std::vector<Cursor> spill_;  // holds ALL cursors when count_ > inline
  };

  size_t MemoryUsage() const;

 private:
  void Build(const LabelId* labels, int32_t num_nodes, size_t num_labels);

  std::vector<std::vector<NodeId>> postings_;
  static const std::vector<NodeId> kEmpty;
};

/// Grows per-label posting lists incrementally from TreeEventSink events:
/// every node event appends the next preorder id to its label's list, so the
/// lists are sorted by construction and the finished index is identical to
/// LabelIndex(Document) / LabelIndex(SuccinctTree) — with no tree of either
/// kind materialized. Move into LabelIndex to finish.
class LabelPostingsBuilder final : public TreeEventSink {
 public:
  LabelPostingsBuilder() = default;

  void BeginElement(LabelId label) override { Add(label); }
  void Attribute(LabelId label, std::string_view /*value*/) override {
    Add(label);
  }
  void Text(LabelId label, std::string_view /*content*/) override {
    Add(label);
  }
  void EndElement() override {}

  /// Nodes recorded so far (== the next preorder id).
  int32_t num_nodes() const { return next_id_; }

 private:
  friend class LabelIndex;

  void Add(LabelId label) {
    if (label >= static_cast<LabelId>(postings_.size())) {
      postings_.resize(static_cast<size_t>(label) + 1);
    }
    postings_[label].push_back(next_id_++);
  }

  std::vector<std::vector<NodeId>> postings_;
  NodeId next_id_ = 0;
};

}  // namespace xpwqo

#endif  // XPWQO_INDEX_LABEL_INDEX_H_
