// LabelIndex: per-label sorted preorder occurrence lists. This is the
// structure behind the paper's jumping primitives: finding the first node
// with a label in L inside a preorder range costs O(|L| log n), and global
// label counts (used by the hybrid strategy to pick a starting label) are
// O(1).
//
// Posting lists are stored compressed (see index/postings.h): sparse labels
// as 32-entry delta blocks behind a skip table, dense labels as
// rank-indexed bitmaps — chosen per label when the index freezes. The lists
// can be built from either tree backend (the pointer Document or a
// SuccinctTree's label array — node ids are preorder ranks in both) or grown
// compressed in-pass during streaming ingestion.
#ifndef XPWQO_INDEX_LABEL_INDEX_H_
#define XPWQO_INDEX_LABEL_INDEX_H_

#include <string_view>
#include <vector>

#include "index/postings.h"
#include "tree/document.h"
#include "tree/event_sink.h"
#include "tree/label_set.h"

namespace xpwqo {

class SuccinctTree;
class LabelPostingsBuilder;

/// Immutable posting lists of node ids (== preorder ranks) per label.
class LabelIndex {
 public:
  explicit LabelIndex(const Document& doc);
  /// Builds the postings straight from the succinct backend's label array.
  explicit LabelIndex(const SuccinctTree& tree);
  /// Adopts posting lists grown incrementally during streaming ingestion.
  explicit LabelIndex(LabelPostingsBuilder&& builder);

  /// Appends the index's persistent-image payload to `out`: {u32 list
  /// count, u32 zero}, an offset directory of list-count + 1 u64 byte
  /// offsets (relative to the payload start; entry i+1 doubles as entry
  /// i's end, the final entry is the payload size), then each list's
  /// PostingList::SerializeTo bytes, every one 8-byte aligned.
  /// Deterministic: an index loaded via FromImage re-serializes
  /// byte-identically.
  void SerializeTo(std::string* out) const;

  /// Wraps an image payload written by SerializeTo; the posting lists read
  /// straight from the mapped bytes, which must outlive the index. `data`
  /// must be 8-byte aligned and `num_nodes` the owning document's node
  /// count. Validates the directory (alignment, monotone offsets inside
  /// the payload) and every list's shape; violations return kCorruption.
  static StatusOr<LabelIndex> FromImage(const uint8_t* data, size_t size,
                                        NodeId num_nodes);

  /// Number of occurrences of `label` (0 for labels interned after the
  /// document was built).
  int32_t Count(LabelId label) const;

  /// Number of stored posting lists (labels at or past this have zero
  /// occurrences; the persist loader cross-checks totals through it).
  size_t NumLists() const { return postings_.size(); }

  /// The compressed posting list of `label` (empty list for unknown ids).
  const PostingList& Postings(LabelId label) const;

  /// All occurrences of `label` in document order, decompressed. One-shot
  /// consumers and tests; hot paths read through Postings()/SetCursor.
  std::vector<NodeId> Occurrences(LabelId label) const;

  /// Smallest node id in [lo, hi) with the given label, or kNullNode.
  NodeId FirstInRange(LabelId label, NodeId lo, NodeId hi) const;

  /// Smallest node id in [lo, hi) whose label is in `set`, or kNullNode.
  /// Requires set.IsFinite(); co-finite sets cannot be jumped to (callers
  /// fall back to stepping, as the paper's engine does). Each label probe
  /// seeks its posting head at or after lo; the heads merge through a
  /// branchless unsigned min (kNullNode = -1 ranks above every real id).
  NodeId FirstInRange(const LabelSet& set, NodeId lo, NodeId hi) const;

  /// Number of occurrences of `label` within [lo, hi).
  int32_t CountInRange(LabelId label, NodeId lo, NodeId hi) const;

  /// True if any label of the finite `set` occurs within [lo, hi). Shares
  /// the seek with FirstInRange but stops at the first hit.
  bool RangeContainsAny(const LabelSet& set, NodeId lo, NodeId hi) const;

  /// Stateful merged probe over one finite LabelSet's posting lists, for
  /// enumeration loops whose lower bound only moves forward (topmost-node
  /// chains: each jump starts at the previous subtree's BinaryEnd). Each
  /// per-label cursor advances monotonically — galloping over skip entries
  /// past whole compressed blocks, decoding only the block it lands in — so
  /// a whole enumeration pays O(matches visited) amortized movement instead
  /// of |L| fresh front-seeks per jump.
  class SetCursor {
   public:
    SetCursor() = default;
    SetCursor(const LabelIndex& index, const LabelSet& set);

    /// Smallest node id >= lo across the set's lists that is < hi, or
    /// kNullNode. `lo` must be non-decreasing across calls.
    NodeId First(NodeId lo, NodeId hi);

   private:
    /// Essential-label sets are almost always tiny; an inline buffer keeps
    /// cursor construction allocation-free for them (one SetCursor is
    /// built per jump region, including regions that prove empty).
    static constexpr size_t kInlineCursors = 4;
    PostingList::Cursor* data() {
      return spill_.empty() ? inline_cursors_ : spill_.data();
    }

    PostingList::Cursor inline_cursors_[kInlineCursors];
    size_t count_ = 0;
    // holds ALL cursors when count_ > inline
    std::vector<PostingList::Cursor> spill_;
  };

  /// Memory accounting for the index-memory report threaded through Engine
  /// and the benches.
  struct MemoryStats {
    size_t bytes = 0;         // compressed postings + per-label table
    size_t vector_bytes = 0;  // the same lists as plain vector<NodeId>
    size_t dense_labels = 0;  // labels stored as rank-indexed bitmaps
    size_t sparse_labels = 0;  // labels stored as delta blocks
  };
  MemoryStats Memory() const;
  size_t MemoryUsage() const { return Memory().bytes; }

 private:
  LabelIndex() = default;  // FromImage populates the lists itself

  void Build(const LabelId* labels, int32_t num_nodes, size_t num_labels);

  std::vector<PostingList> postings_;
  static const PostingList kEmptyList;
};

/// Grows per-label compressed posting lists incrementally from
/// TreeEventSink events: every node event appends the next preorder id to
/// its label's list, so the lists are sorted by construction and compress
/// in-pass (delta blocks grow as the events arrive; no uncompressed list
/// ever exists). The finished index is identical to LabelIndex(Document) /
/// LabelIndex(SuccinctTree) — with no tree of either kind materialized.
/// Move into LabelIndex to finish (that is when the per-label dense/sparse
/// representation is chosen, since it needs the final node count).
class LabelPostingsBuilder final : public TreeEventSink {
 public:
  LabelPostingsBuilder() = default;

  void BeginElement(LabelId label) override { Add(label); }
  void Attribute(LabelId label, std::string_view /*value*/) override {
    Add(label);
  }
  void Text(LabelId label, std::string_view /*content*/) override {
    Add(label);
  }
  void EndElement() override {}

  /// Nodes recorded so far (== the next preorder id).
  int32_t num_nodes() const { return next_id_; }

 private:
  friend class LabelIndex;

  void Add(LabelId label) {
    if (label >= static_cast<LabelId>(postings_.size())) {
      postings_.resize(static_cast<size_t>(label) + 1);
    }
    postings_[label].Append(next_id_++);
  }

  std::vector<PostingList> postings_;
  NodeId next_id_ = 0;
};

}  // namespace xpwqo

#endif  // XPWQO_INDEX_LABEL_INDEX_H_
