#include "index/balanced_parens.h"

#include <algorithm>

namespace xpwqo {

BalancedParens::BalancedParens(const BitVector* bits) : bits_(bits) {
  XPWQO_CHECK(bits_->frozen());
  int64_t n = size();
  num_blocks_ = (n + kBlockBits - 1) / kBlockBits;
  block_excess_.resize(num_blocks_ + 1);
  block_min_.resize(num_blocks_);
  block_max_.resize(num_blocks_);
  int64_t e = 0;
  for (int64_t b = 0; b < num_blocks_; ++b) {
    block_excess_[b] = e;
    int64_t lo = std::numeric_limits<int64_t>::max();
    int64_t hi = std::numeric_limits<int64_t>::min();
    int64_t end = std::min(n, (b + 1) * kBlockBits);
    for (int64_t i = b * kBlockBits; i < end; ++i) {
      e += Delta(i);
      lo = std::min(lo, e);
      hi = std::max(hi, e);
    }
    block_min_[b] = lo;
    block_max_[b] = hi;
  }
  block_excess_[num_blocks_] = e;
  int64_t num_super = (num_blocks_ + kBlocksPerSuper - 1) / kBlocksPerSuper;
  super_min_.resize(num_super);
  super_max_.resize(num_super);
  for (int64_t s = 0; s < num_super; ++s) {
    int64_t lo = std::numeric_limits<int64_t>::max();
    int64_t hi = std::numeric_limits<int64_t>::min();
    int64_t end = std::min(num_blocks_, (s + 1) * kBlocksPerSuper);
    for (int64_t b = s * kBlocksPerSuper; b < end; ++b) {
      lo = std::min(lo, block_min_[b]);
      hi = std::max(hi, block_max_[b]);
    }
    super_min_[s] = lo;
    super_max_[s] = hi;
  }
}

int64_t BalancedParens::Excess(int64_t i) const {
  if (i < 0) return 0;
  size_t r1 = bits_->Rank1(static_cast<size_t>(i) + 1);
  return 2 * static_cast<int64_t>(r1) - (i + 1);
}

int64_t BalancedParens::FwdSearchExcess(int64_t from, int64_t target) const {
  int64_t n = size();
  if (from >= n) return kNotFound;
  int64_t b = from / kBlockBits;
  // Scan the tail of the starting block.
  int64_t e = Excess(from - 1);
  int64_t block_end = std::min(n, (b + 1) * kBlockBits);
  for (int64_t i = from; i < block_end; ++i) {
    e += Delta(i);
    if (e == target) return i;
  }
  // Skip blocks / superblocks that cannot contain the target.
  ++b;
  while (b < num_blocks_) {
    if (b % kBlocksPerSuper == 0) {
      int64_t s = b / kBlocksPerSuper;
      if (super_min_[s] > target || super_max_[s] < target) {
        b += kBlocksPerSuper;
        continue;
      }
    }
    if (block_min_[b] <= target && target <= block_max_[b]) {
      e = block_excess_[b];
      int64_t end = std::min(n, (b + 1) * kBlockBits);
      for (int64_t i = b * kBlockBits; i < end; ++i) {
        e += Delta(i);
        if (e == target) return i;
      }
      XPWQO_DCHECK(false);  // min/max said the target is here
    }
    ++b;
  }
  return kNotFound;
}

int64_t BalancedParens::BwdSearchExcess(int64_t from, int64_t target) const {
  if (from >= size()) from = size() - 1;
  if (from < 0) return target == 0 ? -1 : kNotFound;
  int64_t b = from / kBlockBits;
  int64_t e = Excess(from);
  // Scan the head of the starting block (positions from..block start).
  for (int64_t i = from; i >= b * kBlockBits; --i) {
    if (e == target) return i;
    e -= Delta(i);
  }
  --b;
  while (b >= 0) {
    if ((b + 1) % kBlocksPerSuper == 0) {
      int64_t s = b / kBlocksPerSuper;
      if (super_min_[s] > target || super_max_[s] < target) {
        b -= kBlocksPerSuper;
        continue;
      }
    }
    if (block_min_[b] <= target && target <= block_max_[b]) {
      int64_t end = std::min(size(), (b + 1) * kBlockBits);
      e = Excess(end - 1);
      for (int64_t i = end - 1; i >= b * kBlockBits; --i) {
        if (e == target) return i;
        e -= Delta(i);
      }
      XPWQO_DCHECK(false);
    }
    --b;
  }
  return target == 0 ? -1 : kNotFound;
}

int64_t BalancedParens::FindClose(int64_t i) const {
  XPWQO_DCHECK(IsOpen(i));
  return FwdSearchExcess(i + 1, Excess(i) - 1);
}

int64_t BalancedParens::FindOpen(int64_t j) const {
  XPWQO_DCHECK(!IsOpen(j));
  int64_t p = BwdSearchExcess(j - 1, Excess(j));
  return p == kNotFound ? kNotFound : p + 1;
}

int64_t BalancedParens::Enclose(int64_t i) const {
  XPWQO_DCHECK(IsOpen(i));
  int64_t before = Excess(i - 1);
  if (before == 0) return kNotFound;
  int64_t p = BwdSearchExcess(i - 1, before - 1);
  return p == kNotFound ? kNotFound : p + 1;
}

size_t BalancedParens::MemoryUsage() const {
  return (block_excess_.size() + block_min_.size() + block_max_.size() +
          super_min_.size() + super_max_.size()) *
         sizeof(int64_t);
}

}  // namespace xpwqo
