#include "index/balanced_parens.h"

#include <algorithm>
#include <bit>
#include <limits>

namespace xpwqo {
namespace {

// Sentinels for padded rmM leaves: a range that can never contain a target.
constexpr int32_t kEmptyMin = std::numeric_limits<int32_t>::max() / 2;
constexpr int32_t kEmptyMax = std::numeric_limits<int32_t>::min() / 2;

/// Per-byte excess summaries. A byte covers 8 parenthesis positions, bit 0
/// (LSB) first; 1 = '(' (+1), 0 = ')' (-1). The position tables are indexed
/// by the relative target d + 8 (d in [-8, 8]) and answer an entire byte in
/// one lookup, so the search loops carry no data-dependent inner branches.
struct ByteTables {
  int8_t excess[256];   // total excess of the byte
  int8_t min_fwd[256];  // min cumulative excess over prefixes of length 1..8
  int8_t max_fwd[256];  // max cumulative excess over prefixes of length 1..8
  // fwd_pos[v][d+8]: smallest j with prefix excess (over bits 0..j) == d,
  // else 8.
  int8_t fwd_pos[256][17];
  // bwd_pos[v][d+8]: largest j with rel_j == d, else -1, where
  // rel_j = -(sum of deltas of bits j+1..7) is the offset of
  // Excess(byte start + j) from Excess(byte end).
  int8_t bwd_pos[256][17];
};

constexpr ByteTables MakeByteTables() {
  ByteTables t{};
  for (int v = 0; v < 256; ++v) {
    for (int d = 0; d < 17; ++d) {
      t.fwd_pos[v][d] = 8;
      t.bwd_pos[v][d] = -1;
    }
    int cur = 0, min_f = 8, max_f = -8;
    for (int j = 0; j < 8; ++j) {
      cur += ((v >> j) & 1) ? 1 : -1;
      min_f = cur < min_f ? cur : min_f;
      max_f = cur > max_f ? cur : max_f;
      if (t.fwd_pos[v][cur + 8] == 8) {
        t.fwd_pos[v][cur + 8] = static_cast<int8_t>(j);
      }
    }
    t.excess[v] = static_cast<int8_t>(cur);
    t.min_fwd[v] = static_cast<int8_t>(min_f);
    t.max_fwd[v] = static_cast<int8_t>(max_f);
    int rel = 0;
    for (int j = 7; j >= 0; --j) {
      if (t.bwd_pos[v][rel + 8] == -1) {
        t.bwd_pos[v][rel + 8] = static_cast<int8_t>(j);
      }
      rel -= ((v >> j) & 1) ? 1 : -1;
    }
  }
  return t;
}

constexpr ByteTables kTables = MakeByteTables();

/// 16-bit near-match tables for the excess offset -1, the offset FindClose,
/// FindOpen and Enclose all search for. On tree-shaped inputs the match is
/// usually within a few positions, so one window lookup replaces the whole
/// byte-stepping scan. 128 KiB total, initialized once at startup.
struct NearTables {
  // fwd_m1[w]: smallest j in 0..15 with prefix excess (bits 0..j) == -1,
  // else 16.
  int8_t fwd_m1[1 << 16];
  // bwd_m1[w]: largest j in 0..15 with rel_j == -1, else -1, where
  // rel_j = -(sum of deltas of bits j+1..15).
  int8_t bwd_m1[1 << 16];

  NearTables() {
    for (int v = 0; v < (1 << 16); ++v) {
      int cur = 0;
      fwd_m1[v] = 16;
      for (int j = 0; j < 16; ++j) {
        cur += ((v >> j) & 1) ? 1 : -1;
        if (cur == -1) {
          fwd_m1[v] = static_cast<int8_t>(j);
          break;
        }
      }
      int rel = 0;
      bwd_m1[v] = -1;
      for (int j = 15; j >= 0; --j) {
        if (rel == -1) {
          bwd_m1[v] = static_cast<int8_t>(j);
          break;
        }
        rel -= ((v >> j) & 1) ? 1 : -1;
      }
    }
  }
};

const NearTables kNear;

}  // namespace

BalancedParens::BalancedParens(const BitVector* bits) : bits_(bits) {
  XPWQO_CHECK(bits_->frozen());
  const int64_t n = size();
  XPWQO_CHECK(n < std::numeric_limits<int32_t>::max());
  num_blocks_ = (n + kBlockBits - 1) / kBlockBits;
  block_excess_.resize(num_blocks_ + 1);
  level_mm_.clear();
  level_mm_.emplace_back(2 * std::max<int64_t>(num_blocks_, 1));
  level_mm_[0][0] = kEmptyMin;
  level_mm_[0][1] = kEmptyMax;

  // Per-word min/max/total excess (relative to the word start), then block
  // leaves aggregated from the words.
  const int64_t num_words = (n + 63) / 64;
  word_meta_.resize(num_words);
  for (int64_t w = 0; w < num_words; ++w) {
    const int64_t valid = std::min<int64_t>(64, n - w * 64);
    const uint64_t word = bits_->Word(static_cast<size_t>(w));
    int cur = 0, lo = 127, hi = -127;
    int64_t k = 0;
    for (; k + 8 <= valid; k += 8) {
      const uint8_t v = static_cast<uint8_t>(word >> k);
      lo = std::min(lo, cur + kTables.min_fwd[v]);
      hi = std::max(hi, cur + kTables.max_fwd[v]);
      cur += kTables.excess[v];
    }
    for (; k < valid; ++k) {  // partial tail byte (last word only)
      cur += ((word >> k) & 1) ? 1 : -1;
      lo = std::min(lo, cur);
      hi = std::max(hi, cur);
    }
    word_meta_[w] = static_cast<uint32_t>(static_cast<uint8_t>(lo)) |
                    (static_cast<uint32_t>(static_cast<uint8_t>(hi)) << 8) |
                    (static_cast<uint32_t>(static_cast<uint8_t>(cur)) << 16);
  }
  int64_t e = 0;
  for (int64_t b = 0; b < num_blocks_; ++b) {
    block_excess_[b] = static_cast<int32_t>(e);
    int64_t lo = kEmptyMin, hi = kEmptyMax;
    const int64_t wend = std::min(num_words, (b + 1) * (kBlockBits / 64));
    for (int64_t w = b * (kBlockBits / 64); w < wend; ++w) {
      const uint32_t m = word_meta_[w];
      lo = std::min<int64_t>(lo, e + static_cast<int8_t>(m));
      hi = std::max<int64_t>(hi, e + static_cast<int8_t>(m >> 8));
      e += static_cast<int8_t>(m >> 16);
    }
    level_mm_[0][2 * b] = static_cast<int32_t>(lo);
    level_mm_[0][2 * b + 1] = static_cast<int32_t>(hi);
  }
  block_excess_[num_blocks_] = static_cast<int32_t>(e);
  // Upper levels of the fanout-8 hierarchy, built until one group remains.
  while (level_mm_.back().size() / 2 > kFanout) {
    const std::vector<int32_t>& prev = level_mm_.back();
    const size_t prev_nodes = prev.size() / 2;
    std::vector<int32_t> next(2 * ((prev_nodes + kFanout - 1) / kFanout));
    for (size_t g = 0; g * kFanout < prev_nodes; ++g) {
      int32_t lo = kEmptyMin, hi = kEmptyMax;
      const size_t end = std::min(prev_nodes, (g + 1) * kFanout);
      for (size_t v = g * kFanout; v < end; ++v) {
        lo = std::min(lo, prev[2 * v]);
        hi = std::max(hi, prev[2 * v + 1]);
      }
      next[2 * g] = lo;
      next[2 * g + 1] = hi;
    }
    level_mm_.push_back(std::move(next));
  }
}

int64_t BalancedParens::BytesFwd(int64_t p, int64_t lim, int64_t target,
                                 int64_t* e) const {
  // First byte may be entered mid-way: shift the consumed low bits out so
  // the position table still applies (shifted-in zeros sit past the valid
  // length and cannot produce a hit below it).
  const int off = static_cast<int>(p & 7);
  if (off != 0) {
    const int valid = static_cast<int>(std::min<int64_t>(8 - off, lim - p));
    const uint8_t v = Byte(p - off) >> off;
    const uint64_t d = static_cast<uint64_t>(target - *e) + 8;
    if (d <= 16) {
      const int pos = kTables.fwd_pos[v][d];
      if (pos < valid) return p + pos;
    }
    // Advance e by the valid bits only: the table's excess counts the
    // shifted-in zeros as closes, so add one back per padding bit.
    const uint8_t masked = v & static_cast<uint8_t>((1u << valid) - 1);
    *e += kTables.excess[masked] + (8 - valid);
    p += valid;
  }
  while (p < lim) {
    // One word load per 8 bytes; bytes are peeled off in-register.
    uint64_t w = bits_->Word(static_cast<size_t>(p) >> 6) >> (p & 63);
    const int64_t word_end = std::min(lim, (p | 63) + 1);
    while (p < word_end) {
      const int valid = static_cast<int>(std::min<int64_t>(8, word_end - p));
      const uint8_t v = static_cast<uint8_t>(w);
      const uint64_t d = static_cast<uint64_t>(target - *e) + 8;
      if (d <= 16) {
        const int pos = kTables.fwd_pos[v][d];
        if (pos < valid) return p + pos;
      }
      *e += kTables.excess[v];
      p += 8;
      w >>= 8;
    }
  }
  return kNotFound;
}

int64_t BalancedParens::BytesBwd(int64_t p, int64_t lim, int64_t target,
                                 int64_t* e) const {
  // Topmost byte may be entered mid-way: shift the valid low bits to the
  // top so the backward table walks them first; shifted-in zeros sit below
  // the valid region and rank lower than any valid hit.
  const int off = static_cast<int>(p & 7);
  if (off != 7) {
    const int pad = 7 - off;  // bits shifted in at the bottom
    const uint8_t raw = Byte(p - off);
    const uint8_t v = static_cast<uint8_t>(raw << pad);
    const uint64_t d = static_cast<uint64_t>(target - *e) + 8;
    if (d <= 16) {
      const int pos = kTables.bwd_pos[v][d];
      if (pos >= pad) return (p - off) + (pos - pad);
    }
    const uint8_t masked = raw & static_cast<uint8_t>((1u << (off + 1)) - 1);
    *e -= kTables.excess[masked] + pad;  // padding zeros counted as closes
    p -= off + 1;
  }
  while (p >= lim) {
    // One word load per 8 bytes; bytes are peeled off the top in-register.
    // p sits at a byte's top bit, so bits (p & ~63)..p are live.
    uint64_t w = bits_->Word(static_cast<size_t>(p) >> 6) << (63 - (p & 63));
    const int64_t word_start = std::max(lim, p & ~int64_t{63});
    while (p >= word_start) {
      // Full byte [p-7, p]; *e == Excess(p).
      const uint8_t v = static_cast<uint8_t>(w >> 56);
      const uint64_t d = static_cast<uint64_t>(target - *e) + 8;
      if (d <= 16) {
        const int pos = kTables.bwd_pos[v][d];
        if (pos >= 0) return p - 7 + pos;
      }
      *e -= kTables.excess[v];
      p -= 8;
      w <<= 8;
    }
  }
  return kNotFound;
}

int64_t BalancedParens::ScanFwdBlock(int64_t b, int64_t from, int64_t target,
                                     int64_t e) const {
  const int64_t end = std::min(size(), (b + 1) * kBlockBits);
  int64_t i = from;
  if (i >= end) return kNotFound;
  // Entry word bytewise, then whole words through the min/max metadata.
  const int64_t first_lim = std::min(end, (i | 63) + 1);
  int64_t r = BytesFwd(i, first_lim, target, &e);
  if (r != kNotFound) return r;
  i = first_lim;
  while (i < end) {
    const uint32_t m = word_meta_[static_cast<size_t>(i) >> 6];
    const int64_t d = target - e;
    if (d >= static_cast<int8_t>(m) && d <= static_cast<int8_t>(m >> 8)) {
      r = BytesFwd(i, std::min(end, i + 64), target, &e);
      XPWQO_DCHECK(r != kNotFound);  // the word metadata said the hit is here
      return r;
    }
    e += static_cast<int8_t>(m >> 16);
    i += 64;
  }
  return kNotFound;
}

int64_t BalancedParens::ScanBwdBlock(int64_t b, int64_t from, int64_t target,
                                     int64_t e) const {
  const int64_t start = b * kBlockBits;
  int64_t i = from;
  if (i < start) return kNotFound;
  // Block starts are word-aligned (kBlockBits is a multiple of 64), so the
  // entry word never straddles the block boundary.
  static_assert(kBlockBits % 64 == 0);
  const int64_t first_lim = std::max(start, i & ~int64_t{63});
  // Entry-word min/max probe: one popcount derives the excess at the word
  // boundary, and the word metadata then decides whether the entry byte
  // scan can hit at all — a deep Enclose skips straight into the
  // 64-positions-per-probe metadata walk below.
  const size_t w = static_cast<size_t>(i) >> 6;
  const uint32_t meta = word_meta_[w];
  const int live = static_cast<int>(i & 63) + 1;
  const uint64_t below = bits_->Word(w) & (~uint64_t{0} >> (64 - live));
  const int64_t e0 = e - (2 * std::popcount(below) - live);
  const int64_t d0 = target - e0;
  if (d0 >= static_cast<int8_t>(meta) &&
      d0 <= static_cast<int8_t>(meta >> 8)) {
    int64_t r = BytesBwd(i, first_lim, target, &e);
    if (r != kNotFound) return r;
  } else {
    // The target excess occurs nowhere in the entry word: skip it whole.
    e = e0;  // == Excess(word_start - 1)
  }
  i = first_lim - 1;
  while (i >= start) {
    // Word [i-63, i], all bits valid (it precedes a scanned position).
    // Checked values are Excess(word start + j) = e + prefix(j+1) - total,
    // so the word contains the target iff d + total ∈ [min, max].
    const uint32_t m = word_meta_[static_cast<size_t>(i) >> 6];
    const int64_t dt = target - e + static_cast<int8_t>(m >> 16);
    if (dt >= static_cast<int8_t>(m) && dt <= static_cast<int8_t>(m >> 8)) {
      const int64_t r = BytesBwd(i, i & ~int64_t{63}, target, &e);
      XPWQO_DCHECK(r != kNotFound);
      return r;
    }
    e -= static_cast<int8_t>(m >> 16);
    i -= 64;
  }
  return kNotFound;
}

int64_t BalancedParens::NextCandidateBlock(int64_t b, int64_t target) const {
  // Ascend: at each level probe the group siblings to the right of the
  // current node — a group's 8 {min, max} pairs share a cache line. The
  // first containing sibling brackets the answer; descend picking the
  // leftmost containing child per level.
  const int num_levels = static_cast<int>(level_mm_.size());
  int64_t idx = b;
  int64_t found = -1;
  int k = 0;
  for (; k < num_levels; ++k) {
    const std::vector<int32_t>& lv = level_mm_[k];
    const int64_t nodes = static_cast<int64_t>(lv.size() / 2);
    const int64_t group_end =
        std::min(nodes, (idx / kFanout + 1) * kFanout);
    for (int64_t x = idx + 1; x < group_end; ++x) {
      if (lv[2 * x] <= target && target <= lv[2 * x + 1]) {
        found = x;
        break;
      }
    }
    if (found >= 0) break;
    idx /= kFanout;
  }
  if (found < 0) return -1;
  while (k > 0) {
    --k;
    const std::vector<int32_t>& lv = level_mm_[k];
    const int64_t nodes = static_cast<int64_t>(lv.size() / 2);
    const int64_t cstart = found * kFanout;
    const int64_t cend = std::min(nodes, cstart + kFanout);
    int64_t child = -1;
    for (int64_t c = cstart; c < cend; ++c) {
      if (lv[2 * c] <= target && target <= lv[2 * c + 1]) {
        child = c;
        break;
      }
    }
    XPWQO_DCHECK(child >= 0);  // the parent's range covers a child's
    found = child;
  }
  return found;
}

int64_t BalancedParens::PrevCandidateBlock(int64_t b, int64_t target) const {
  const int num_levels = static_cast<int>(level_mm_.size());
  int64_t idx = b;
  int64_t found = -1;
  int k = 0;
  for (; k < num_levels; ++k) {
    const std::vector<int32_t>& lv = level_mm_[k];
    const int64_t group_start = (idx / kFanout) * kFanout;
    for (int64_t x = idx - 1; x >= group_start; --x) {
      if (lv[2 * x] <= target && target <= lv[2 * x + 1]) {
        found = x;
        break;
      }
    }
    if (found >= 0) break;
    idx /= kFanout;
  }
  if (found < 0) return -1;
  while (k > 0) {
    --k;
    const std::vector<int32_t>& lv = level_mm_[k];
    const int64_t nodes = static_cast<int64_t>(lv.size() / 2);
    const int64_t cstart = found * kFanout;
    const int64_t cend = std::min(nodes, cstart + kFanout);
    int64_t child = -1;
    for (int64_t c = cend - 1; c >= cstart; --c) {
      if (lv[2 * c] <= target && target <= lv[2 * c + 1]) {
        child = c;
        break;
      }
    }
    XPWQO_DCHECK(child >= 0);
    found = child;
  }
  return found;
}

int64_t BalancedParens::FwdSearchExcessFrom(int64_t from, int64_t target,
                                            int64_t e_before) const {
  const int64_t b = from / kBlockBits;
  int64_t r = ScanFwdBlock(b, from, target, e_before);
  if (r != kNotFound) return r;
  const int64_t nb = NextCandidateBlock(b, target);
  if (nb < 0) return kNotFound;
  r = ScanFwdBlock(nb, nb * kBlockBits, target, block_excess_[nb]);
  XPWQO_DCHECK(r != kNotFound);  // the rmM range said the target is here
  return r;
}

int64_t BalancedParens::FwdSearchExcess(int64_t from, int64_t target) const {
  if (from < 0) from = 0;
  if (from >= size()) return kNotFound;
  return FwdSearchExcessFrom(from, target, Excess(from - 1));
}

int64_t BalancedParens::BwdSearchExcessFrom(int64_t from, int64_t target,
                                            int64_t e_at) const {
  const int64_t b = from / kBlockBits;
  int64_t r = ScanBwdBlock(b, from, target, e_at);
  if (r != kNotFound) return r;
  const int64_t pb = PrevCandidateBlock(b, target);
  if (pb < 0) return target == 0 ? -1 : kNotFound;
  // pb < b, so block pb is full; its last position has the next block's
  // starting excess.
  const int64_t last = (pb + 1) * kBlockBits - 1;
  r = ScanBwdBlock(pb, last, target, block_excess_[pb + 1]);
  XPWQO_DCHECK(r != kNotFound);
  return r;
}

int64_t BalancedParens::BwdSearchExcess(int64_t from, int64_t target) const {
  if (from >= size()) from = size() - 1;
  if (from < 0) return target == 0 ? -1 : kNotFound;
  return BwdSearchExcessFrom(from, target, Excess(from));
}

// FindClose/FindOpen/Enclose all search for the excess offset -1 from their
// starting position, and the scans only ever consume target - e, so the
// in-block part runs entirely on relative excess (target -1, e 0): no rank
// read at all unless the answer crosses a block boundary. A 16-bit window
// lookup resolves the near matches that dominate tree navigation — leaves,
// small subtrees, first children — in one table load, and the window is
// indifferent to block boundaries because it reads the raw bits.

int64_t BalancedParens::FindClose(int64_t i) const {
  XPWQO_DCHECK(IsOpen(i));
  const int64_t n = size();
  if (i + 1 >= n) return kNotFound;
  const uint64_t w64 = Window64(i + 1);
  const int pos = kNear.fwd_m1[w64 & 0xFFFF];
  if (pos < 16) {
    const int64_t near = i + 1 + pos;
    if (near < n) return near;  // near >= n would be a padding hit
  }
  // Cascade the remaining table-checked bytes of the already-loaded window:
  // the 16-bit prefix had no dip to -1, so its excess is even and >= 0, and
  // shallow continuations stay within the byte table's offset range.
  int64_t probe_end = i + 17;  // first position not yet probed
  int64_t e_probe = 2 * std::popcount(w64 & 0xFFFF) - 16;
  for (int k = 2; k <= 7; ++k) {
    const uint8_t v = static_cast<uint8_t>(w64 >> (8 * k));
    const uint64_t d = static_cast<uint64_t>(-1 - e_probe) + 8;
    if (d <= 16) {
      const int bpos = kTables.fwd_pos[v][d];
      if (bpos < 8) {
        const int64_t hit = i + 1 + 8 * k + bpos;
        if (hit < n) return hit;
        break;  // padding hit: rescan below handles the boundary
      }
    }
    e_probe += kTables.excess[v];
    probe_end += 8;
  }
  const int64_t b = (i + 1) / kBlockBits;
  int64_t r;
  if (probe_end < n && probe_end / kBlockBits == b) {
    r = ScanFwdBlock(b, probe_end, -1, e_probe);
  } else {
    r = ScanFwdBlock(b, i + 1, -1, 0);
  }
  if (r != kNotFound) return r;
  const int64_t target = Excess(i) - 1;
  const int64_t nb = NextCandidateBlock(b, target);
  if (nb < 0) return kNotFound;
  return ScanFwdBlock(nb, nb * kBlockBits, target, block_excess_[nb]);
}

int64_t BalancedParens::BwdMinus1(int64_t from) const {
  const int64_t b = from / kBlockBits;
  int64_t r;
  if (from >= 64) {
    const uint64_t w64 = Window64(from - 63);  // bit 63 = position from
    const int pos = kNear.bwd_m1[(w64 >> 48) & 0xFFFF];
    if (pos >= 0) return from - 15 + pos;
    // Cascade the remaining table-checked bytes of the loaded window —
    // in-register, so answers within the window cost table lookups only.
    int64_t probe_pos = from - 16;  // highest position not yet probed
    int64_t e_probe = 16 - 2 * std::popcount(w64 >> 48);  // Excess(from-16)
    for (int k = 5; k >= 0; --k) {
      const uint8_t v = static_cast<uint8_t>(w64 >> (8 * k));
      const uint64_t d = static_cast<uint64_t>(-1 - e_probe) + 8;
      if (d <= 16) {
        const int bpos = kTables.bwd_pos[v][d];
        if (bpos >= 0) return (from - 63) + 8 * k + bpos;
      }
      e_probe -= kTables.excess[v];
      probe_pos -= 8;
    }
    // The whole 64-bit window is clean: this is a deep answer. One rank
    // read buys the absolute target, and the block's own min/max then
    // decides whether the in-block scan can hit at all — most deep calls
    // go straight to the candidate-block hierarchy.
    const int64_t target = Excess(from) - 1;
    r = kNotFound;
    if (level_mm_[0][2 * b] <= target && target <= level_mm_[0][2 * b + 1]) {
      r = (probe_pos >= 0 && probe_pos / kBlockBits == b)
              ? ScanBwdBlock(b, probe_pos, target, target + 1 + e_probe)
              : ScanBwdBlock(b, from, target, target + 1);
    }
    if (r != kNotFound) return r;
    const int64_t pb = PrevCandidateBlock(b, target);
    if (pb < 0) return target == 0 ? -1 : kNotFound;
    const int64_t last = (pb + 1) * kBlockBits - 1;
    r = ScanBwdBlock(pb, last, target, block_excess_[pb + 1]);
    XPWQO_DCHECK(r != kNotFound);
    return r;
  } else if (from >= 16) {
    const int pos = kNear.bwd_m1[Window16(from - 15)];  // bit 15 = from
    if (pos >= 0) return from - 15 + pos;
    r = ScanBwdBlock(b, from, -1, 0);
  } else {
    r = ScanBwdBlock(b, from, -1, 0);
  }
  if (r != kNotFound) return r;
  const int64_t target = Excess(from) - 1;
  const int64_t pb = PrevCandidateBlock(b, target);
  // No block can contain the target: the match is the virtual position -1
  // when the target excess is 0, otherwise absent.
  if (pb < 0) return target == 0 ? -1 : kNotFound;
  const int64_t last = (pb + 1) * kBlockBits - 1;
  r = ScanBwdBlock(pb, last, target, block_excess_[pb + 1]);
  XPWQO_DCHECK(r != kNotFound);
  return r;
}

int64_t BalancedParens::FindOpen(int64_t j) const {
  XPWQO_DCHECK(!IsOpen(j));
  if (j - 1 < 0) return kNotFound;
  const int64_t p = BwdMinus1(j - 1);  // Excess(j) == Excess(j-1) - 1
  return p == kNotFound ? kNotFound : p + 1;
}

int64_t BalancedParens::Enclose(int64_t i) const {
  XPWQO_DCHECK(IsOpen(i));
  if (i - 1 < 0) return kNotFound;
  const int64_t p = BwdMinus1(i - 1);
  return p == kNotFound ? kNotFound : p + 1;
}

size_t BalancedParens::MemoryUsage() const {
  size_t hierarchy = 0;
  for (const std::vector<int32_t>& lv : level_mm_) hierarchy += lv.size();
  return (block_excess_.size() + hierarchy) * sizeof(int32_t) +
         word_meta_.size() * sizeof(uint32_t);
}

}  // namespace xpwqo
