// TextStore: the content layer of the succinct index — attribute values and
// text content for a tree whose structure lives in SuccinctTree/Document.
//
// Values are stored as one concatenated UTF-8 heap plus a sparse node→value
// mapping: a has-value bitmap over preorder NodeIds (1 exactly for @attr and
// #text nodes) whose Rank1 indexes a (num_values + 1)-entry offset directory
// into the heap. Lookup is O(1): one rank, two offset reads, zero copies —
// Value() returns a string_view into the heap.
//
// Like BitVector and the posting lists, the store is dual-mode: the build
// path owns its heap and offsets (populated streaming by the ingestion
// sinks, value by value, with no intermediate Document), while an engine
// opened from a v2 index image wraps the mapped `text` section in place
// (FromExternal) and re-serializes byte-identically — the fixpoint property
// the persist round-trip tests pin down.
#ifndef XPWQO_INDEX_TEXT_STORE_H_
#define XPWQO_INDEX_TEXT_STORE_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "index/bit_vector.h"
#include "tree/types.h"
#include "util/status.h"

namespace xpwqo {

class Document;

/// Immutable node→value map. Build through TextStoreBuilder (streaming),
/// FromDocument (pointer backend), or FromExternal (mapped v2 image).
class TextStore {
 public:
  TextStore() = default;
  TextStore(TextStore&&) noexcept = default;
  TextStore& operator=(TextStore&&) noexcept = default;

  /// Collects the values of every @attr and #text node of `doc`.
  static TextStore FromDocument(const Document& doc);

  /// Wraps `length` bytes of serialized store (the v2 image's text section)
  /// without copying the offsets or the heap; `num_nodes` is the node count
  /// the structural sections already established. Validates the layout:
  /// exact length, zero reserved fields, bitmap population == num_values,
  /// offset monotonicity, final offset == heap length. The bytes must be
  /// 8-aligned and outlive the store.
  static StatusOr<TextStore> FromExternal(const uint8_t* data, size_t length,
                                          size_t num_nodes);

  /// Exact byte size SerializeTo appends for these parameters.
  static size_t SerializedBytes(size_t num_nodes, size_t num_values,
                                size_t heap_bytes) {
    return kHeaderBytes + BitVector::SerializedWordBytes(num_nodes) +
           (num_values + 1) * sizeof(uint64_t) + heap_bytes;
  }

  /// Appends the serialized store: a 32-byte header {num_values, heap_bytes,
  /// 0, 0}, the has-value bitmap words, the offset directory, the heap.
  /// Byte-for-byte deterministic; an external store re-serializes to exactly
  /// the bytes it wraps.
  void SerializeTo(std::string* out) const;

  /// Node count the bitmap covers (== the tree's node count).
  size_t num_nodes() const { return has_.size(); }
  size_t num_values() const { return num_values_; }
  size_t heap_bytes() const { return heap_bytes_; }
  /// True when the offsets and heap live in external (mapped) memory.
  bool external() const { return external_; }

  /// True when `n` is a value-bearing (@attr or #text) node.
  bool has_value(NodeId n) const {
    return has_.Get(static_cast<size_t>(n));
  }

  /// The value of node `n`, or an empty view for valueless nodes. The view
  /// points into the heap (or the mapped image) — no copy.
  std::string_view Value(NodeId n) const {
    const size_t i = static_cast<size_t>(n);
    if (!has_.Get(i)) return {};
    const size_t k = has_.Rank1(i);  // values strictly before n
    const uint64_t begin = offsets()[k];
    return std::string_view(heap() + begin,
                            static_cast<size_t>(offsets()[k + 1] - begin));
  }

  /// Bytes held live: bitmap + rank directory + offsets + heap (mapped
  /// bytes count too — they are resident while the store is).
  size_t MemoryUsage() const;

 private:
  friend class TextStoreBuilder;

  static constexpr size_t kHeaderBytes = 4 * sizeof(uint64_t);

  const uint64_t* offsets() const {
    return external_ ? ext_offsets_ : owned_offsets_.data();
  }
  const char* heap() const {
    return external_ ? ext_heap_ : owned_heap_.data();
  }

  BitVector has_;
  // Owned mode (build path): the directory and heap live here.
  std::vector<uint64_t> owned_offsets_{0};
  std::string owned_heap_;
  // External mode: views into the mapped image (kept alive by the Engine).
  const uint64_t* ext_offsets_ = nullptr;
  const char* ext_heap_ = nullptr;
  size_t num_values_ = 0;
  size_t heap_bytes_ = 0;
  bool external_ = false;
};

/// Streaming construction: the ingestion sink calls AddNode() for each
/// valueless node and AddValue() for each @attr/#text node, in preorder —
/// exactly the order the tree builder assigns NodeIds.
class TextStoreBuilder {
 public:
  void ReserveNodes(size_t nodes) {
    GrowWordsTo(nodes / 64 + 2);
    GrowHeapTo(nodes * 4);
    offsets_.reserve(nodes / 4 + 16);
  }

  /// Pre-sizes for a document of `input_bytes` serialized XML. Character
  /// data and attribute values are the bulk of a text-bearing document's
  /// bytes (markup is the rest), so the heap gets most of the estimate —
  /// sizing it from a node-count guess instead starves it and the growth
  /// reallocs dominate the streaming build.
  void ReserveForInput(size_t input_bytes) {
    GrowWordsTo(input_bytes / 1024 + 2);
    GrowHeapTo(input_bytes - input_bytes / 3);
    offsets_.reserve(input_bytes / 28 + 16);
  }

  /// Registers a node with no value (elements) — a bare counter bump:
  /// the bitmap words are assembled directly (zero means no value), so
  /// the majority node kind costs one increment, not a bit push.
  void AddNode() { ++nodes_; }

  /// Registers a value-bearing node: sets its bitmap bit (one shift-or
  /// into the word array) and appends its content to the heap. Every step
  /// stays inline — this runs once per @attr/#text node on the streaming
  /// ingestion hot path, where an out-of-line call per value (a libc
  /// memcpy, a libstdc++ string append, a BitVector push) measurably
  /// drags the whole-document load rate.
  void AddValue(std::string_view value) {
    const size_t i = nodes_++;
    const size_t w = i >> 6;
    if (w >= words_.size()) GrowWordsTo(w + 1);
    words_[w] |= uint64_t{1} << (i & 63);
    const size_t n = value.size();
    if (used_ + n > heap_.size()) GrowHeapTo(used_ + n);
    char* dst = &heap_[used_];
    const char* src = value.data();
    if (n <= 16) {
      // Typical values (attribute ids, single words) are a handful of
      // bytes; a libc memcpy call per value is pure overhead. Overlapping
      // fixed-width halves copy [0,n) exactly without reading past either
      // buffer.
      if (n >= 8) {
        uint64_t a, b;
        std::memcpy(&a, src, 8);
        std::memcpy(&b, src + n - 8, 8);
        std::memcpy(dst, &a, 8);
        std::memcpy(dst + n - 8, &b, 8);
      } else if (n >= 4) {
        uint32_t a, b;
        std::memcpy(&a, src, 4);
        std::memcpy(&b, src + n - 4, 4);
        std::memcpy(dst, &a, 4);
        std::memcpy(dst + n - 4, &b, 4);
      } else {
        for (size_t k = 0; k < n; ++k) dst[k] = src[k];
      }
    } else {
      std::memcpy(dst, src, n);
    }
    used_ += n;
    offsets_.push_back(used_);
  }

  /// Freezes the bitmap and hands the store over.
  TextStore Finish() &&;

 private:
  // Grows the append buffer without value-initializing the slack — the
  // live prefix is always written by AddValue before it is read, and a
  // plain resize() would memset (and fault in) megabytes per load that
  // the stream immediately overwrites.
  void GrowHeapTo(size_t need) {
    if (need > heap_.size()) {
      const size_t target = std::max(need, heap_.size() + heap_.size() / 2);
#if defined(__cpp_lib_string_resize_and_overwrite)
      heap_.resize_and_overwrite(target, [](char*, size_t n) { return n; });
#else
      heap_.resize(target);
#endif
    }
  }

  void GrowWordsTo(size_t need) {
    if (need > words_.size()) {
      words_.resize(std::max(need, words_.size() + words_.size() / 2), 0);
    }
  }

  std::vector<uint64_t> words_;  // has-value bitmap words, built in place
  std::vector<uint64_t> offsets_{0};
  std::string heap_;  // grown ahead of the writes; bytes [0, used_) are live
  size_t used_ = 0;
  size_t nodes_ = 0;  // preorder id of the next registered node
};

}  // namespace xpwqo

#endif  // XPWQO_INDEX_TEXT_STORE_H_
