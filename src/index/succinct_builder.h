// SuccinctBuilder: streams TreeEventSink events straight into the succinct
// representation — the balanced-parentheses bit string plus the preorder
// label array — so a SuccinctTree can be built from the XML parser without
// ever materializing a pointer Document. Peak memory during ingestion is the
// final ~2 bits/node + 32-bit label per node (plus the rank/rmM directories
// built once at Finish), instead of the 5-10x pointer-tree spike.
#ifndef XPWQO_INDEX_SUCCINCT_BUILDER_H_
#define XPWQO_INDEX_SUCCINCT_BUILDER_H_

#include <memory>
#include <vector>

#include "index/bit_vector.h"
#include "tree/event_sink.h"
#include "util/status.h"

namespace xpwqo {

class SuccinctTree;

/// Appends one '(' + label per node as events arrive (attributes and text
/// are leaf nodes: open immediately followed by close) and ')' per close.
/// Finish() freezes the bits and builds the navigation directories in one
/// pass over the completed arrays.
class SuccinctBuilder final : public TreeEventSink {
 public:
  SuccinctBuilder() = default;

  /// Pre-sizes the parenthesis and label arrays for `nodes` nodes.
  void ReserveNodes(size_t nodes);

  // ------------------------------------------------------ TreeEventSink
  void BeginElement(LabelId label) override {
    Open(label);
    ++depth_;
  }
  void Attribute(LabelId label, std::string_view /*value*/) override {
    Open(label);
    Close();
  }
  void Text(LabelId label, std::string_view /*content*/) override {
    Open(label);
    Close();
  }
  void EndElement() override {
    XPWQO_DCHECK(depth_ > 0);
    --depth_;
    Close();
  }

  /// Nodes appended so far.
  int32_t num_nodes() const { return static_cast<int32_t>(labels_.size()); }
  /// Elements currently open.
  int64_t depth() const { return depth_; }

  /// Builds the tree (freeze + rank/rmM directories). Consumes the builder.
  /// Fails on an empty stream or unbalanced Begin/End events.
  StatusOr<std::unique_ptr<SuccinctTree>> Finish() &&;

  /// The raw parts, for adopting into a SuccinctTree in place. Only valid
  /// on a balanced, finished stream; Finish() is the checked front door.
  BitVector TakeBits() { return std::move(bits_); }
  std::vector<LabelId> TakeLabels() { return std::move(labels_); }

 private:
  void Open(LabelId label) {
    bits_.PushBack(true);
    labels_.push_back(label);
  }
  void Close() { bits_.PushBack(false); }

  BitVector bits_;
  std::vector<LabelId> labels_;
  int64_t depth_ = 0;
};

}  // namespace xpwqo

#endif  // XPWQO_INDEX_SUCCINCT_BUILDER_H_
