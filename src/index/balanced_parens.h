// Balanced-parentheses operations (findclose / findopen / enclose / excess)
// over a BitVector, implemented as a range-min-max (rmM) structure in the
// spirit of Sadakane & Navarro's fully-functional succinct trees [18].
//
// Three resolution levels cover the excess sequence: per-word packed
// {min, max, total} prefix-excess summaries, 512-bit block leaves caching
// the absolute excess at the block start plus min/max inside, and a
// complete binary tree of min/max ranges over the blocks. Excess moves by
// ±1 per position, so a region can contain a target excess exactly when
// target ∈ [min, max]. A search scans the starting block (bytes via 8-bit
// lookup tables, then 64 positions per word-metadata probe), locates the
// nearest candidate block via a 16-leaf linear probe then the tree, and
// finishes with one more block scan. FindClose/FindOpen/Enclose search for
// the fixed excess offset -1, which 16-bit window tables resolve in one
// lookup for the near matches that dominate tree navigation; Excess itself
// is O(1) through the bit vector's rank9 directory. Worst case stays
// O(log(n/512)) per operation.
#ifndef XPWQO_INDEX_BALANCED_PARENS_H_
#define XPWQO_INDEX_BALANCED_PARENS_H_

#include <cstdint>
#include <vector>

#include "index/bit_vector.h"

namespace xpwqo {

/// Parenthesis navigation over a frozen BitVector where 1 = '(' and 0 = ')'.
class BalancedParens {
 public:
  static constexpr int64_t kNotFound = -2;

  BalancedParens() = default;

  /// Builds the rmM directory. `bits` must outlive this object and be
  /// frozen and balanced.
  explicit BalancedParens(const BitVector* bits);

  int64_t size() const { return static_cast<int64_t>(bits_->size()); }

  bool IsOpen(int64_t i) const { return bits_->Get(static_cast<size_t>(i)); }

  /// excess(i) = (#opens - #closes) among positions [0, i]. excess(-1) = 0.
  /// O(1): one rank9 directory read.
  int64_t Excess(int64_t i) const {
    if (i < 0) return 0;
    const size_t r1 = bits_->Rank1(static_cast<size_t>(i) + 1);
    return 2 * static_cast<int64_t>(r1) - (i + 1);
  }

  /// Position of the close paren matching the open at i.
  int64_t FindClose(int64_t i) const;

  /// Position of the open paren matching the close at j.
  int64_t FindOpen(int64_t j) const;

  /// Position of the open paren of the pair most tightly enclosing the pair
  /// opened at i; kNotFound if none (i is the outermost pair).
  int64_t Enclose(int64_t i) const;

  /// Smallest j >= from with Excess(j) == target, or kNotFound.
  int64_t FwdSearchExcess(int64_t from, int64_t target) const;

  /// Largest q <= from with Excess(q) == target; -1 counts as a virtual
  /// position with excess 0. kNotFound if none.
  int64_t BwdSearchExcess(int64_t from, int64_t target) const;

  size_t MemoryUsage() const;

 private:
  static constexpr int64_t kBlockBits = 512;
  static constexpr int64_t kFanout = 8;  // rmM hierarchy children per node

  int Delta(int64_t i) const { return IsOpen(i) ? 1 : -1; }

  /// Bits p..p+63 as a 64-bit value (zero-padded past size()); p < size().
  /// Branchless two-word read — the bit vector pads one word past the data.
  uint64_t Window64(int64_t p) const {
    const size_t w = static_cast<size_t>(p) >> 6;
    const int sh = static_cast<int>(p & 63);
    const uint64_t lo = bits_->Word(w) >> sh;
    const uint64_t hi = (bits_->Word(w + 1) << (63 - sh)) << 1;
    return lo | hi;
  }
  /// Bits p..p+15 as a 16-bit value.
  uint32_t Window16(int64_t p) const {
    return static_cast<uint32_t>(Window64(p) & 0xFFFF);
  }

  /// FwdSearchExcess with Excess(from - 1) already known; FindClose etc.
  /// derive it from the excess they computed for the target, halving the
  /// rank-directory reads per operation.
  int64_t FwdSearchExcessFrom(int64_t from, int64_t target,
                              int64_t e_before) const;
  /// BwdSearchExcess with Excess(from) already known. Requires from >= 0
  /// (the public wrapper handles the virtual position -1).
  int64_t BwdSearchExcessFrom(int64_t from, int64_t target,
                              int64_t e_at) const;
  /// The byte of the parenthesis string covering positions [i, i+8) for
  /// byte-aligned i.
  uint8_t Byte(int64_t i) const {
    return static_cast<uint8_t>(bits_->Word(static_cast<size_t>(i) >> 6) >>
                                (i & 56));
  }

  /// Bytewise scan of positions [p, lim), entering with e = Excess(p - 1).
  /// Returns the first position with excess == target, or kNotFound with e
  /// advanced to Excess(lim - 1). lim is byte-aligned or equals size().
  int64_t BytesFwd(int64_t p, int64_t lim, int64_t target, int64_t* e) const;
  /// Bytewise scan of positions p down to lim (inclusive), entering with
  /// e = Excess(p). Returns the last position with excess == target, or
  /// kNotFound with e rewound to Excess(lim - 1). lim is byte-aligned.
  int64_t BytesBwd(int64_t p, int64_t lim, int64_t target, int64_t* e) const;

  /// Scans block b forward over positions [from, block end), entering with
  /// e = Excess(from - 1): the entry word bytewise, the rest via the
  /// per-word min/max metadata (64 positions per probe). Returns the first
  /// position with excess == target, or kNotFound.
  int64_t ScanFwdBlock(int64_t b, int64_t from, int64_t target,
                       int64_t e) const;
  /// Scans block b backward over positions [block start, from], entering
  /// with e = Excess(from). Returns the last position with excess == target,
  /// or kNotFound.
  int64_t ScanBwdBlock(int64_t b, int64_t from, int64_t target,
                       int64_t e) const;

  /// Largest q <= from with Excess(q) == Excess(from) - 1 — the shared core
  /// of FindOpen and Enclose. Returns -1 for the virtual root position
  /// (possible only when that excess is 0), kNotFound if absent.
  int64_t BwdMinus1(int64_t from) const;

  /// Smallest leaf block index > b whose excess range contains target, or -1.
  int64_t NextCandidateBlock(int64_t b, int64_t target) const;
  /// Largest leaf block index < b whose excess range contains target, or -1.
  int64_t PrevCandidateBlock(int64_t b, int64_t target) const;

  const BitVector* bits_ = nullptr;
  int64_t num_blocks_ = 0;
  std::vector<int32_t> block_excess_;  // excess before each block start
  // rmM hierarchy over the blocks with fanout 8: level 0 holds interleaved
  // {min, max} per block, level k per group of 8^k blocks. A group's 8
  // pairs are 64 contiguous bytes — one cache line — so a candidate search
  // pays one dependent load per level and the hierarchy is only
  // ~log8(blocks) deep (4 levels for a million-node document, vs 13
  // dependent probes for a binary tree).
  std::vector<std::vector<int32_t>> level_mm_;
  // Word-granularity rmM level: per 64-bit word, packed {min prefix excess
  // (int8), max prefix excess (int8), total excess (int8)} over the word's
  // valid bits, relative to the word start. Lets the block scans skip 64
  // positions per probe instead of 8.
  std::vector<uint32_t> word_meta_;
};

}  // namespace xpwqo

#endif  // XPWQO_INDEX_BALANCED_PARENS_H_
