// Balanced-parentheses operations (findclose / findopen / enclose / excess)
// over a BitVector, in the spirit of Sadakane & Navarro's range-min-max tree
// [18]. We use a two-level directory (512-bit blocks, superblocks of 64
// blocks) storing absolute excess minima/maxima; searches skip whole blocks
// and superblocks whose excess range cannot contain the target. Because the
// excess walk changes by ±1 per position, a block is a candidate exactly
// when target ∈ [min, max].
#ifndef XPWQO_INDEX_BALANCED_PARENS_H_
#define XPWQO_INDEX_BALANCED_PARENS_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "index/bit_vector.h"

namespace xpwqo {

/// Parenthesis navigation over a frozen BitVector where 1 = '(' and 0 = ')'.
class BalancedParens {
 public:
  static constexpr int64_t kNotFound = -2;

  BalancedParens() = default;

  /// Builds the excess directory. `bits` must outlive this object and be
  /// frozen and balanced.
  explicit BalancedParens(const BitVector* bits);

  int64_t size() const { return static_cast<int64_t>(bits_->size()); }

  bool IsOpen(int64_t i) const { return bits_->Get(static_cast<size_t>(i)); }

  /// excess(i) = (#opens - #closes) among positions [0, i]. excess(-1) = 0.
  int64_t Excess(int64_t i) const;

  /// Position of the close paren matching the open at i.
  int64_t FindClose(int64_t i) const;

  /// Position of the open paren matching the close at j.
  int64_t FindOpen(int64_t j) const;

  /// Position of the open paren of the pair most tightly enclosing the pair
  /// opened at i; kNotFound if none (i is the outermost pair).
  int64_t Enclose(int64_t i) const;

  /// Smallest j >= from with Excess(j) == target, or kNotFound.
  int64_t FwdSearchExcess(int64_t from, int64_t target) const;

  /// Largest q <= from with Excess(q) == target; -1 counts as a virtual
  /// position with excess 0. kNotFound if none.
  int64_t BwdSearchExcess(int64_t from, int64_t target) const;

  size_t MemoryUsage() const;

 private:
  static constexpr int64_t kBlockBits = 512;
  static constexpr int64_t kBlocksPerSuper = 64;

  int Delta(int64_t i) const { return IsOpen(i) ? 1 : -1; }

  const BitVector* bits_ = nullptr;
  int64_t num_blocks_ = 0;
  std::vector<int64_t> block_excess_;  // excess before block start
  std::vector<int64_t> block_min_;     // min absolute excess within block
  std::vector<int64_t> block_max_;
  std::vector<int64_t> super_min_;
  std::vector<int64_t> super_max_;
};

}  // namespace xpwqo

#endif  // XPWQO_INDEX_BALANCED_PARENS_H_
