#include "index/text_store.h"

#include <cstring>
#include <utility>

#include "tree/document.h"

namespace xpwqo {

TextStore TextStoreBuilder::Finish() && {
  heap_.resize(used_);  // drop the pre-grown slack past the live prefix
  TextStore store;
  store.num_values_ = offsets_.size() - 1;
  store.heap_bytes_ = heap_.size();
  store.has_ = BitVector::FromWords(std::move(words_), nodes_);
  store.owned_offsets_ = std::move(offsets_);
  store.owned_heap_ = std::move(heap_);
  return store;
}

TextStore TextStore::FromDocument(const Document& doc) {
  TextStoreBuilder builder;
  builder.ReserveNodes(static_cast<size_t>(doc.num_nodes()));
  for (NodeId n = 0; n < doc.num_nodes(); ++n) {
    const NodeKind kind = doc.kind(n);
    if (kind == NodeKind::kAttribute || kind == NodeKind::kText) {
      builder.AddValue(doc.text(n));
    } else {
      builder.AddNode();
    }
  }
  return std::move(builder).Finish();
}

StatusOr<TextStore> TextStore::FromExternal(const uint8_t* data, size_t length,
                                            size_t num_nodes) {
  if (length < kHeaderBytes) {
    return Status::Corruption("text store: truncated header");
  }
  uint64_t header[4];
  std::memcpy(header, data, sizeof(header));
  const uint64_t num_values = header[0];
  const uint64_t heap_bytes = header[1];
  if (header[2] != 0 || header[3] != 0) {
    return Status::Corruption("text store: reserved header fields not zero");
  }
  // Bound the u64 fields before arithmetic: both came off disk.
  if (num_values > num_nodes) {
    return Status::Corruption("text store: more values than nodes");
  }
  if (heap_bytes > length) {
    return Status::Corruption("text store: heap longer than the section");
  }
  const size_t word_bytes = BitVector::SerializedWordBytes(num_nodes);
  const size_t expected =
      SerializedBytes(num_nodes, num_values, static_cast<size_t>(heap_bytes));
  if (expected != length) {
    return Status::Corruption("text store: section length mismatch");
  }
  BitVector has = BitVector::FromExternal(
      reinterpret_cast<const uint64_t*>(data + kHeaderBytes), num_nodes);
  if (has.CountOnes() != num_values) {
    return Status::Corruption("text store: bitmap population != num_values");
  }
  const uint64_t* offsets =
      reinterpret_cast<const uint64_t*>(data + kHeaderBytes + word_bytes);
  if (offsets[0] != 0) {
    return Status::Corruption("text store: offsets must start at zero");
  }
  for (uint64_t i = 0; i < num_values; ++i) {
    if (offsets[i + 1] < offsets[i]) {
      return Status::Corruption("text store: offsets not monotone");
    }
  }
  if (offsets[num_values] != heap_bytes) {
    return Status::Corruption("text store: final offset != heap length");
  }
  TextStore store;
  store.has_ = std::move(has);
  store.ext_offsets_ = offsets;
  store.ext_heap_ = reinterpret_cast<const char*>(data + kHeaderBytes +
                                                  word_bytes +
                                                  (num_values + 1) * 8);
  store.num_values_ = static_cast<size_t>(num_values);
  store.heap_bytes_ = static_cast<size_t>(heap_bytes);
  store.external_ = true;
  return store;
}

void TextStore::SerializeTo(std::string* out) const {
  const uint64_t header[4] = {num_values_, heap_bytes_, 0, 0};
  out->append(reinterpret_cast<const char*>(header), sizeof(header));
  has_.SerializeWordsTo(out);
  out->append(reinterpret_cast<const char*>(offsets()),
              (num_values_ + 1) * sizeof(uint64_t));
  out->append(heap(), heap_bytes_);
}

size_t TextStore::MemoryUsage() const {
  return has_.MemoryUsage() + (num_values_ + 1) * sizeof(uint64_t) +
         heap_bytes_;
}

}  // namespace xpwqo
