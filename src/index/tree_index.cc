#include "index/tree_index.h"

namespace xpwqo {

NodeId TreeIndex::FirstBinaryDescendant(NodeId n, const LabelSet& set) const {
  return labels_.FirstInRange(set, n + 1, doc_->BinaryEnd(n));
}

NodeId TreeIndex::FirstInBinarySubtree(NodeId n, const LabelSet& set) const {
  if (set.Contains(doc_->label(n))) return n;
  return FirstBinaryDescendant(n, set);
}

NodeId TreeIndex::NextTopmost(NodeId m, const LabelSet& set,
                              NodeId scope) const {
  return NextTopmostBefore(m, set, doc_->BinaryEnd(scope));
}

NodeId TreeIndex::NextTopmostBefore(NodeId m, const LabelSet& set,
                                    NodeId scope_end) const {
  // The binary subtree of m ends at BinaryEnd(m); the next topmost node is
  // the first match at or after that boundary, still inside the scope.
  return labels_.FirstInRange(set, doc_->BinaryEnd(m), scope_end);
}

NodeId TreeIndex::LeftPathFirst(NodeId n, const LabelSet& set) const {
  for (NodeId c = doc_->first_child(n); c != kNullNode;
       c = doc_->first_child(c)) {
    if (set.Contains(doc_->label(c))) return c;
  }
  return kNullNode;
}

NodeId TreeIndex::RightPathFirst(NodeId n, const LabelSet& set) const {
  // The right-most binary path below n is n's chain of next-siblings. A
  // sibling starts exactly at the XmlEnd of its predecessor, so we can probe
  // the label index from there and, when a match falls inside a sibling's
  // subtree rather than on the spine, skip past that subtree.
  const NodeId parent = doc_->parent(n);
  const NodeId hi = doc_->BinaryEnd(n);
  NodeId pos = doc_->XmlEnd(n);  // start of n's next sibling, if any
  while (pos < hi) {
    NodeId m = labels_.FirstInRange(set, pos, hi);
    if (m == kNullNode) return kNullNode;
    if (doc_->parent(m) == parent) return m;  // on the spine
    // m is nested inside a sibling subtree; hop to that sibling's end by
    // walking up to the spine level.
    NodeId top = m;
    while (doc_->parent(top) != parent) top = doc_->parent(top);
    pos = doc_->XmlEnd(top);
  }
  return kNullNode;
}

}  // namespace xpwqo
