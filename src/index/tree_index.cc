#include "index/tree_index.h"

namespace xpwqo {

NodeId TreeIndex::FirstBinaryDescendant(NodeId n, const LabelSet& set) const {
  return labels_.FirstInRange(set, n + 1, BinaryEnd(n));
}

NodeId TreeIndex::FirstInBinarySubtree(NodeId n, const LabelSet& set) const {
  if (set.Contains(Label(n))) return n;
  return FirstBinaryDescendant(n, set);
}

NodeId TreeIndex::NextTopmost(NodeId m, const LabelSet& set,
                              NodeId scope) const {
  return NextTopmostBefore(m, set, BinaryEnd(scope));
}

NodeId TreeIndex::NextTopmostBefore(NodeId m, const LabelSet& set,
                                    NodeId scope_end) const {
  // The binary subtree of m ends at BinaryEnd(m); the next topmost node is
  // the first match at or after that boundary, still inside the scope.
  return labels_.FirstInRange(set, BinaryEnd(m), scope_end);
}

NodeId TreeIndex::LeftPathFirst(NodeId n, const LabelSet& set) const {
  for (NodeId c = FirstChild(n); c != kNullNode; c = FirstChild(c)) {
    if (set.Contains(Label(c))) return c;
  }
  return kNullNode;
}

NodeId TreeIndex::RightPathFirst(NodeId n, const LabelSet& set) const {
  // The right-most binary path below n is n's chain of next-siblings. A
  // sibling starts exactly at the XmlEnd of its predecessor, so we can probe
  // the label index from there and, when a match falls inside a sibling's
  // subtree rather than on the spine, skip past that subtree.
  const NodeId parent = Parent(n);
  const NodeId hi = BinaryEnd(n);
  NodeId pos = XmlEnd(n);  // start of n's next sibling, if any
  while (pos < hi) {
    NodeId m = labels_.FirstInRange(set, pos, hi);
    if (m == kNullNode) return kNullNode;
    if (Parent(m) == parent) return m;  // on the spine
    // m is nested inside a sibling subtree; hop to that sibling's end by
    // walking up to the spine level.
    NodeId top = m;
    while (Parent(top) != parent) top = Parent(top);
    pos = XmlEnd(top);
  }
  return kNullNode;
}

}  // namespace xpwqo
