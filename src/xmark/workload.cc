#include "xmark/workload.h"

namespace xpwqo {

const std::vector<WorkloadQuery>& Figure2Workload() {
  // Note: the paper typesets "closed auctions" with a space (LaTeX artifact);
  // XMark's actual tags use underscores.
  static const std::vector<WorkloadQuery> kQueries = {
      {"Q01", "/site/regions"},
      {"Q02", "/site/regions/europe/item/mailbox/mail/text/keyword"},
      {"Q03",
       "/site/closed_auctions/closed_auction/annotation/description/parlist/"
       "listitem"},
      {"Q04", "/site/regions/*/item"},
      {"Q05", "//listitem//keyword"},
      {"Q06", "/site/regions/*/item//keyword"},
      {"Q07", "/site/people/person[ address and (phone or homepage) ]"},
      {"Q08", "//listitem[ .//keyword and .//emph ]//parlist"},
      {"Q09", "/site/regions/*/item[ mailbox/mail/date ]/mailbox/mail"},
      {"Q10", "/site[ .//keyword ]"},
      {"Q11", "/site//keyword"},
      {"Q12", "/site[ .//keyword ]//keyword"},
      {"Q13", "/site[ .//keyword or .//keyword/emph ]//keyword"},
      {"Q14", "/site[ .//keyword//emph ]/descendant::keyword"},
      {"Q15", "/site[ .//*//* ]//keyword"},
  };
  return kQueries;
}

const WorkloadQuery* FindWorkloadQuery(const std::string& id) {
  for (const WorkloadQuery& q : Figure2Workload()) {
    if (id == q.id) return &q;
  }
  return nullptr;
}

}  // namespace xpwqo
