// The four hand-crafted document configurations of the paper's Figure 5,
// used to probe the hybrid evaluation strategy on the query
// //listitem//keyword//emph.
//
// Paper-stated shapes (counts reproduced exactly):
//   A: 75021 listitem; 3 keyword below listitems (3 in total); 4 emph below
//      those 3 keywords.                         (best case: rare keyword)
//   B: 75021 listitem; 60234 keyword below listitems (60234 in total);
//      4 emph below those keywords.              (best case: rare emph)
//   C: 9083 listitem; one keyword below listitems (40493 in total); 65831
//      emph below the one keyword below a listitem. (hybrid ~ regular)
//   D: 20304 listitem; 10209 keyword below one listitem (10209 in total);
//      15074 emph below one of those keywords.   (hybrid worst case)
#ifndef XPWQO_XMARK_FIG5_CONFIGS_H_
#define XPWQO_XMARK_FIG5_CONFIGS_H_

#include "tree/document.h"

namespace xpwqo {

enum class Fig5Config { kA, kB, kC, kD };

/// Builds the document for one Figure 5 configuration. Deterministic.
Document BuildFig5Config(Fig5Config config);

/// "A".."D".
const char* Fig5ConfigName(Fig5Config config);

/// The number of nodes //listitem//keyword//emph selects in each
/// configuration, as stated by the paper (A:4, B:4, C:65831, D:15074).
int Fig5ExpectedSelected(Fig5Config config);

}  // namespace xpwqo

#endif  // XPWQO_XMARK_FIG5_CONFIGS_H_
