#include "xmark/fig5_configs.h"

#include "tree/builder.h"
#include "util/check.h"

namespace xpwqo {
namespace {

// Counts stated in Figure 5 of the paper.
constexpr int kListitemsA = 75021, kKeywordsA = 3, kEmphsA = 4;
constexpr int kListitemsB = 75021, kKeywordsB = 60234, kEmphsB = 4;
constexpr int kListitemsC = 9083, kKeywordsTotalC = 40493, kEmphsC = 65831;
constexpr int kListitemsD = 20304, kKeywordsD = 10209, kEmphsD = 15074;

void Emph(TreeBuilder* b) {
  b->BeginElement("emph");
  b->EndElement();
}
void KeywordWithEmphs(TreeBuilder* b, int emphs) {
  b->BeginElement("keyword");
  for (int i = 0; i < emphs; ++i) Emph(b);
  b->EndElement();
}

Document BuildA() {
  TreeBuilder b;
  b.BeginElement("doc");
  // First three listitems carry the keywords; emphs split 2/1/1.
  const int emph_split[3] = {2, 1, 1};
  for (int i = 0; i < kListitemsA; ++i) {
    b.BeginElement("listitem");
    if (i < kKeywordsA) KeywordWithEmphs(&b, emph_split[i]);
    b.EndElement();
  }
  b.EndElement();
  return std::move(b.Finish()).value();
}

Document BuildB() {
  TreeBuilder b;
  b.BeginElement("doc");
  // Keywords spread over the first kKeywordsB listitems, one each; the four
  // emphs sit under the first four keywords.
  for (int i = 0; i < kListitemsB; ++i) {
    b.BeginElement("listitem");
    if (i < kKeywordsB) KeywordWithEmphs(&b, i < kEmphsB ? 1 : 0);
    b.EndElement();
  }
  b.EndElement();
  return std::move(b.Finish()).value();
}

Document BuildC() {
  TreeBuilder b;
  b.BeginElement("doc");
  // One keyword below a listitem, holding all the emphs.
  b.BeginElement("listitem");
  KeywordWithEmphs(&b, kEmphsC);
  b.EndElement();
  for (int i = 1; i < kListitemsC; ++i) {
    b.BeginElement("listitem");
    b.EndElement();
  }
  // The remaining keywords live outside any listitem.
  b.BeginElement("other");
  for (int i = 1; i < kKeywordsTotalC; ++i) KeywordWithEmphs(&b, 0);
  b.EndElement();
  b.EndElement();
  return std::move(b.Finish()).value();
}

Document BuildD() {
  TreeBuilder b;
  b.BeginElement("doc");
  // All keywords below one listitem; one keyword holds all the emphs.
  b.BeginElement("listitem");
  KeywordWithEmphs(&b, kEmphsD);
  for (int i = 1; i < kKeywordsD; ++i) KeywordWithEmphs(&b, 0);
  b.EndElement();
  for (int i = 1; i < kListitemsD; ++i) {
    b.BeginElement("listitem");
    b.EndElement();
  }
  b.EndElement();
  return std::move(b.Finish()).value();
}

}  // namespace

Document BuildFig5Config(Fig5Config config) {
  switch (config) {
    case Fig5Config::kA:
      return BuildA();
    case Fig5Config::kB:
      return BuildB();
    case Fig5Config::kC:
      return BuildC();
    case Fig5Config::kD:
      return BuildD();
  }
  XPWQO_CHECK(false);
  return Document();
}

const char* Fig5ConfigName(Fig5Config config) {
  switch (config) {
    case Fig5Config::kA:
      return "A";
    case Fig5Config::kB:
      return "B";
    case Fig5Config::kC:
      return "C";
    case Fig5Config::kD:
      return "D";
  }
  return "?";
}

int Fig5ExpectedSelected(Fig5Config config) {
  switch (config) {
    case Fig5Config::kA:
      return kEmphsA;
    case Fig5Config::kB:
      return kEmphsB;
    case Fig5Config::kC:
      return kEmphsC;
    case Fig5Config::kD:
      return kEmphsD;
  }
  return -1;
}

}  // namespace xpwqo
