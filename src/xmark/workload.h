// The query workload of the paper's Figure 2: Q01-Q09 from XPathMark [4],
// Q10-Q15 crafted to exercise the automata logic.
#ifndef XPWQO_XMARK_WORKLOAD_H_
#define XPWQO_XMARK_WORKLOAD_H_

#include <string>
#include <vector>

namespace xpwqo {

struct WorkloadQuery {
  /// "Q01".."Q15".
  const char* id;
  /// The XPath expression.
  const char* xpath;
};

/// Q01..Q15 in order.
const std::vector<WorkloadQuery>& Figure2Workload();

/// Lookup by id ("Q05"); returns nullptr if unknown.
const WorkloadQuery* FindWorkloadQuery(const std::string& id);

}  // namespace xpwqo

#endif  // XPWQO_XMARK_WORKLOAD_H_
