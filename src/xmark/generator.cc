#include "xmark/generator.h"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "tree/builder.h"
#include "util/random.h"

namespace xpwqo {
namespace {

const char* const kWords[] = {
    "amorous",  "baggage", "cabinet", "dagger",  "eagle",   "fabric",
    "gamboge",  "hackles", "iceberg", "jackal",  "keel",    "labour",
    "madrigal", "nacelle", "oasis",   "pageant", "quarrel", "rampart",
    "sable",    "tackle",  "umpire",  "vagrant", "waffle",  "yarrow",
    "zealot",   "arrears", "borough", "cascade", "dredge",  "embargo"};
constexpr int kNumWords = sizeof(kWords) / sizeof(kWords[0]);

const char* const kRegions[] = {"africa",   "asia",     "australia",
                                "europe",   "namerica", "samerica"};
// Share of items per region; europe is the largest, matching XMark.
const double kRegionShare[] = {0.06, 0.12, 0.05, 0.40, 0.30, 0.07};

class XMarkGen {
 public:
  explicit XMarkGen(const XMarkOptions& options)
      : opt_(options), rng_(options.seed) {}

  Document Generate() {
    const double f = std::max(opt_.scale, 1e-4);
    const int num_items = std::max(6, static_cast<int>(21750 * f));
    const int num_persons = std::max(4, static_cast<int>(25500 * f));
    const int num_open = std::max(2, static_cast<int>(12000 * f));
    const int num_closed = std::max(2, static_cast<int>(9750 * f));
    const int num_categories = std::max(2, static_cast<int>(1000 * f));

    b_.BeginElement("site");
    Regions(num_items);
    Categories(num_categories);
    Catgraph(num_categories);
    People(num_persons);
    OpenAuctions(num_open);
    ClosedAuctions(num_closed);
    b_.EndElement();
    auto doc = b_.Finish();
    XPWQO_CHECK(doc.ok());
    return std::move(doc).value();
  }

 private:
  void Words(int lo, int hi) {
    if (!opt_.with_text) return;
    int n = static_cast<int>(rng_.UniformInt(lo, hi));
    std::string s;
    for (int i = 0; i < n; ++i) {
      if (i > 0) s += ' ';
      s += kWords[rng_.Uniform(kNumWords)];
    }
    if (!s.empty()) b_.AddText(s);
  }

  void Id(const char* prefix, int i) {
    if (opt_.with_attributes) {
      b_.AddAttribute("id", std::string(prefix) + std::to_string(i));
    }
  }

  void SimpleLeaf(const char* tag, int lo = 1, int hi = 3) {
    b_.BeginElement(tag);
    Words(lo, hi);
    b_.EndElement();
  }

  /// <keyword>; occasionally nests <emph> inside, so predicates such as
  /// Q13's .//keyword/emph and Q14's .//keyword//emph have witnesses.
  void Keyword() {
    b_.BeginElement("keyword");
    Words(1, 2);
    if (rng_.Bernoulli(0.08)) {
      b_.BeginElement("emph");
      Words(1, 1);
      b_.EndElement();
    }
    b_.EndElement();
  }

  /// <text> with interleaved words and inline keyword/bold/emph markup.
  void Text() {
    b_.BeginElement("text");
    Words(2, 8);
    int inlines = rng_.Geometric(0.55, 4);
    for (int i = 0; i < inlines; ++i) {
      switch (rng_.Uniform(3)) {
        case 0:
          Keyword();
          break;
        case 1:
          SimpleLeaf("bold");
          break;
        default:
          SimpleLeaf("emph");
          break;
      }
      Words(1, 4);
    }
    b_.EndElement();
  }

  /// Recursive parlist/listitem trees (XMark's <parlist> production).
  void Parlist(int depth) {
    b_.BeginElement("parlist");
    int items = static_cast<int>(rng_.UniformInt(1, 4));
    for (int i = 0; i < items; ++i) {
      b_.BeginElement("listitem");
      if (depth < 3 && rng_.Bernoulli(0.30)) {
        Parlist(depth + 1);
      } else {
        Text();
      }
      b_.EndElement();
    }
    b_.EndElement();
  }

  void Description() {
    b_.BeginElement("description");
    if (rng_.Bernoulli(0.35)) {
      Parlist(0);
    } else {
      Text();
    }
    b_.EndElement();
  }

  void Mailbox() {
    b_.BeginElement("mailbox");
    int mails = rng_.Geometric(0.6, 5);
    for (int i = 0; i < mails; ++i) {
      b_.BeginElement("mail");
      SimpleLeaf("from");
      SimpleLeaf("to");
      if (rng_.Bernoulli(0.8)) SimpleLeaf("date", 1, 1);
      Text();
      b_.EndElement();
    }
    b_.EndElement();
  }

  void Item(int region, int i) {
    b_.BeginElement("item");
    Id("item", i);
    SimpleLeaf("location");
    SimpleLeaf("quantity", 1, 1);
    SimpleLeaf("name");
    b_.BeginElement("payment");
    Words(1, 2);
    b_.EndElement();
    Description();
    b_.BeginElement("shipping");
    Words(1, 3);
    b_.EndElement();
    int cats = rng_.Geometric(0.5, 3);
    for (int c = 0; c < cats; ++c) {
      b_.BeginElement("incategory");
      if (opt_.with_attributes) {
        b_.AddAttribute("category",
                        "category" + std::to_string(rng_.Uniform(1000)));
      }
      b_.EndElement();
    }
    Mailbox();
    b_.EndElement();
    (void)region;
  }

  void Regions(int num_items) {
    b_.BeginElement("regions");
    int next_id = 0;
    for (int r = 0; r < 6; ++r) {
      b_.BeginElement(kRegions[r]);
      int count = std::max(1, static_cast<int>(num_items * kRegionShare[r]));
      for (int i = 0; i < count; ++i) Item(r, next_id++);
      b_.EndElement();
    }
    b_.EndElement();
  }

  void Categories(int n) {
    b_.BeginElement("categories");
    for (int i = 0; i < n; ++i) {
      b_.BeginElement("category");
      Id("category", i);
      SimpleLeaf("name");
      Description();
      b_.EndElement();
    }
    b_.EndElement();
  }

  void Catgraph(int n) {
    b_.BeginElement("catgraph");
    for (int i = 0; i < n; ++i) {
      b_.BeginElement("edge");
      if (opt_.with_attributes) {
        b_.AddAttribute("from", "category" + std::to_string(rng_.Uniform(n)));
        b_.AddAttribute("to", "category" + std::to_string(rng_.Uniform(n)));
      }
      b_.EndElement();
    }
    b_.EndElement();
  }

  void People(int n) {
    b_.BeginElement("people");
    for (int i = 0; i < n; ++i) {
      b_.BeginElement("person");
      Id("person", i);
      SimpleLeaf("name");
      SimpleLeaf("emailaddress", 1, 1);
      if (rng_.Bernoulli(0.5)) SimpleLeaf("phone", 1, 1);
      if (rng_.Bernoulli(0.4)) {
        b_.BeginElement("address");
        SimpleLeaf("street");
        SimpleLeaf("city", 1, 1);
        SimpleLeaf("country", 1, 1);
        SimpleLeaf("zipcode", 1, 1);
        b_.EndElement();
      }
      if (rng_.Bernoulli(0.3)) SimpleLeaf("homepage", 1, 1);
      if (rng_.Bernoulli(0.5)) SimpleLeaf("creditcard", 1, 1);
      if (rng_.Bernoulli(0.7)) {
        b_.BeginElement("profile");
        if (opt_.with_attributes) {
          b_.AddAttribute("income", std::to_string(rng_.Uniform(100000)));
        }
        int interests = rng_.Geometric(0.5, 4);
        for (int k = 0; k < interests; ++k) SimpleLeaf("interest", 1, 1);
        SimpleLeaf("business", 1, 1);
        if (rng_.Bernoulli(0.5)) SimpleLeaf("age", 1, 1);
        b_.EndElement();
      }
      b_.BeginElement("watches");
      int watches = rng_.Geometric(0.4, 3);
      for (int k = 0; k < watches; ++k) SimpleLeaf("watch", 1, 1);
      b_.EndElement();
      b_.EndElement();
    }
    b_.EndElement();
  }

  void OpenAuctions(int n) {
    b_.BeginElement("open_auctions");
    for (int i = 0; i < n; ++i) {
      b_.BeginElement("open_auction");
      Id("open_auction", i);
      SimpleLeaf("initial", 1, 1);
      int bidders = rng_.Geometric(0.6, 5);
      for (int k = 0; k < bidders; ++k) {
        b_.BeginElement("bidder");
        SimpleLeaf("date", 1, 1);
        SimpleLeaf("time", 1, 1);
        SimpleLeaf("increase", 1, 1);
        b_.EndElement();
      }
      SimpleLeaf("current", 1, 1);
      SimpleLeaf("itemref", 1, 1);
      SimpleLeaf("seller", 1, 1);
      Annotation();
      SimpleLeaf("quantity", 1, 1);
      SimpleLeaf("type", 1, 1);
      b_.BeginElement("interval");
      SimpleLeaf("start", 1, 1);
      SimpleLeaf("end", 1, 1);
      b_.EndElement();
      b_.EndElement();
    }
    b_.EndElement();
  }

  void Annotation() {
    b_.BeginElement("annotation");
    SimpleLeaf("author", 1, 1);
    Description();
    SimpleLeaf("happiness", 1, 1);
    b_.EndElement();
  }

  void ClosedAuctions(int n) {
    b_.BeginElement("closed_auctions");
    for (int i = 0; i < n; ++i) {
      b_.BeginElement("closed_auction");
      SimpleLeaf("seller", 1, 1);
      SimpleLeaf("buyer", 1, 1);
      SimpleLeaf("itemref", 1, 1);
      SimpleLeaf("price", 1, 1);
      SimpleLeaf("date", 1, 1);
      SimpleLeaf("quantity", 1, 1);
      SimpleLeaf("type", 1, 1);
      Annotation();
      b_.EndElement();
    }
    b_.EndElement();
  }

  XMarkOptions opt_;
  Random rng_;
  TreeBuilder b_;
};

}  // namespace

Document GenerateXMark(const XMarkOptions& options) {
  return XMarkGen(options).Generate();
}

double XMarkScaleFromEnv(double fallback) {
  const char* env = std::getenv("XPWQO_SCALE");
  if (env == nullptr) return fallback;
  char* end = nullptr;
  double v = std::strtod(env, &end);
  if (end == env || v <= 0) return fallback;
  return v;
}

}  // namespace xpwqo
