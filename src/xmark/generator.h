// Deterministic XMark-like document generator.
//
// The paper evaluates on a 116 MB XMark [19] document (5,673,051 nodes). We
// regenerate a structurally equivalent document from scratch: the element
// vocabulary and nesting reproduce the XMark DTD fragments exercised by the
// benchmark queries Q01-Q15 (regions/item/mailbox/mail/text/keyword, people/
// person with optional address/phone/homepage, closed_auctions with
// annotation/description, and recursive parlist/listitem trees containing
// keyword/emph/bold text markup). The generator is fully deterministic for a
// given (seed, scale) pair.
#ifndef XPWQO_XMARK_GENERATOR_H_
#define XPWQO_XMARK_GENERATOR_H_

#include <cstdint>

#include "tree/document.h"

namespace xpwqo {

struct XMarkOptions {
  /// XMark-style scale factor. scale=1.0 approximates the paper's document
  /// (tens of thousands of items/persons/auctions, millions of nodes);
  /// the default keeps unit tests and quick benches fast.
  double scale = 0.05;
  /// Seed for the deterministic PRNG.
  uint64_t seed = 20100324;  // paper's arXiv date
  /// Emit #text leaves (content words).
  bool with_text = true;
  /// Emit @id-style attributes.
  bool with_attributes = true;
};

/// Generates an XMark-like Document.
Document GenerateXMark(const XMarkOptions& options = {});

/// Reads the scale from the XPWQO_SCALE environment variable if set,
/// otherwise returns `fallback`. Used by the benchmark binaries.
double XMarkScaleFromEnv(double fallback);

}  // namespace xpwqo

#endif  // XPWQO_XMARK_GENERATOR_H_
