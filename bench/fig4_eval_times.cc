// Reproduces Figure 4: query answering time per query for the four
// evaluator configurations (Naive / Jumping / Memo. / Opt.). Uses
// google-benchmark; one series per (query, strategy) pair.
#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace xpwqo {
namespace {

void RunQuery(benchmark::State& state, const char* xpath,
              EvalStrategy strategy) {
  const Engine& engine = bench::XMarkEngine();
  auto compiled = engine.Compile(xpath);
  if (!compiled.ok()) {
    state.SkipWithError(compiled.status().ToString().c_str());
    return;
  }
  QueryOptions options;
  options.strategy = strategy;
  int64_t selected = 0;
  int64_t visited = 0;
  for (auto _ : state) {
    auto r = engine.Run(*compiled, options);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    selected = static_cast<int64_t>(r->nodes.size());
    visited = r->stats.nodes_visited;
    benchmark::DoNotOptimize(r->nodes.data());
  }
  state.counters["selected"] = static_cast<double>(selected);
  state.counters["visited"] = static_cast<double>(visited);
}

void RegisterAll() {
  struct Config {
    const char* name;
    EvalStrategy strategy;
  };
  const Config configs[] = {
      {"Naive", EvalStrategy::kNaive},
      {"Jumping", EvalStrategy::kJumping},
      {"Memo", EvalStrategy::kMemoized},
      {"Opt", EvalStrategy::kOptimized},
  };
  for (const WorkloadQuery& q : Figure2Workload()) {
    for (const Config& c : configs) {
      std::string name = std::string(q.id) + "/" + c.name;
      benchmark::RegisterBenchmark(
          name.c_str(),
          [xpath = q.xpath, strategy = c.strategy](benchmark::State& state) {
            RunQuery(state, xpath, strategy);
          })
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace xpwqo

int main(int argc, char** argv) {
  xpwqo::bench::PrintHeader("Figure 4: impact of jumping and memoization",
                            xpwqo::bench::XMarkEngine());
  xpwqo::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
