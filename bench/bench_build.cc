// Ingestion benchmark: parse+build throughput (MB/s) and peak RSS for the
// three load pipelines on an XMark-style XML file —
//
//   pointer          streamed events -> TreeBuilder -> Document + TreeIndex
//   pointer_legacy   the pre-streaming pointer path: slurp the file into
//                    one string, parse, then build the TreeIndex (the
//                    throughput yardstick the streamed pointer load must
//                    stay within 5% of)
//   succinct_stream  streamed events -> {SuccinctBuilder, LabelPostings-
//                    Builder}, no pointer Document ever materialized
//   succinct_legacy  the pre-streaming path: slurp the file into one
//                    string, parse a full pointer Document, then convert to
//                    SuccinctTree + rebuild the LabelIndex from it
//   image_open       reopen a saved index image (persist/): one mmap +
//                    checksum validation + in-memory directory rebuild,
//                    no XML parse at all; also reports the first-query
//                    latency on the freshly mapped engine. The acceptance
//                    bar: >= 20x faster than succinct_stream's rebuild.
//
// Each pipeline runs in a forked child so its peak RSS (VmHWM delta from
// the child's post-fork baseline) is isolated from sibling measurements and
// allocator caching. The point of the exercise: succinct_stream's peak
// should be several times (target >= 4x) below succinct_legacy's, at
// comparable throughput.
//
// Usage: bench_build [--quick] [--out PATH]
//   --quick  small document + small chunk size, so the CI smoke run also
//            exercises the streaming loader's refill/boundary paths
//   --out    where to write the JSON report (default BENCH_build.json)
// XPWQO_SCALE overrides the document scale (default 0.45, ~1.1M nodes).
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/collection.h"
#include "core/engine.h"
#include "index/label_index.h"
#include "index/succinct_tree.h"
#include "persist/image_format.h"
#include "persist/index_image.h"
#include "util/strings.h"
#include "xmark/generator.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xml/structural_scan.h"

namespace xpwqo {
namespace {

/// Current peak RSS of this process in KiB (Linux VmHWM; getrusage
/// fallback would report the same number but /proc keeps this portable
/// across libc versions).
long PeakRssKb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::atol(line.c_str() + 6);
    }
  }
  return 0;
}

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// What a load pipeline reports back from its forked child: the node count
/// plus the label-index memory accounting (compressed postings vs the
/// plain-vector baseline they replaced). nodes < 0 flags a failed load.
struct LoadStats {
  long nodes = -1;
  size_t label_index_bytes = 0;
  size_t label_index_vector_bytes = 0;
  double first_query_us = 0;  // image_open only: first Run() latency
  // If >= 0, overrides the phase wall time: image_open times the open by
  // itself so the first-query measurement does not count as load time.
  double load_ms = -1;
};

struct PhaseResult {
  std::string name;
  double ms = 0;
  double peak_delta_mb = 0;  // peak RSS growth during the load
  long nodes = 0;
  double label_index_mb = 0;         // compressed postings
  double label_index_vector_mb = 0;  // same lists as plain vectors
  double first_query_us = 0;
  bool ok = false;
};

/// Runs `load` in a forked child, reporting wall time, the child's peak-RSS
/// growth over its post-fork baseline, the node count the load saw, and the
/// label-index memory accounting.
PhaseResult MeasureForked(const std::string& name,
                          const std::function<LoadStats()>& load) {
  PhaseResult result;
  result.name = name;
  int fds[2];
  if (pipe(fds) != 0) return result;
  pid_t pid = fork();
  if (pid < 0) {
    close(fds[0]);
    close(fds[1]);
    return result;
  }
  if (pid == 0) {
    close(fds[0]);
    const long baseline_kb = PeakRssKb();
    const double start = NowMs();
    const LoadStats stats = load();
    const double ms = stats.load_ms >= 0 ? stats.load_ms : NowMs() - start;
    const long peak_kb = PeakRssKb();
    double payload[6] = {ms,
                         static_cast<double>(peak_kb - baseline_kb),
                         static_cast<double>(stats.nodes),
                         static_cast<double>(stats.label_index_bytes),
                         static_cast<double>(stats.label_index_vector_bytes),
                         stats.first_query_us};
    ssize_t written = write(fds[1], payload, sizeof(payload));
    (void)written;
    close(fds[1]);
    _exit(0);
  }
  close(fds[1]);
  double payload[6] = {0, 0, 0, 0, 0, 0};
  ssize_t got = read(fds[0], payload, sizeof(payload));
  close(fds[0]);
  int wstatus = 0;
  waitpid(pid, &wstatus, 0);
  if (got == sizeof(payload) && WIFEXITED(wstatus) &&
      WEXITSTATUS(wstatus) == 0) {
    result.ms = payload[0];
    result.peak_delta_mb = payload[1] / 1024.0;
    result.nodes = static_cast<long>(payload[2]);
    result.label_index_mb = payload[3] / 1e6;
    result.label_index_vector_mb = payload[4] / 1e6;
    result.first_query_us = payload[5];
    result.ok = true;
  }
  return result;
}

/// LoadStats from an engine's index-memory report.
LoadStats StatsOfEngine(const Engine& engine) {
  const IndexMemoryReport report = engine.IndexMemory();
  return {engine.num_nodes(), report.label_index_bytes,
          report.label_index_vector_bytes};
}

/// Slurps the whole file into one string, the pre-streaming read path.
StatusOr<Document> SlurpAndParse(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string content = ss.str();
  return ParseXmlString(content);
}

/// The pre-PR pointer load: slurp, parse, index.
LoadStats LegacyPointerLoad(const std::string& path) {
  auto doc = SlurpAndParse(path);
  if (!doc.ok()) return {};
  TreeIndex index(*doc);
  const LabelIndex::MemoryStats m = index.labels().Memory();
  return {doc->num_nodes(), m.bytes, m.vector_bytes};
}

/// The pre-PR succinct load, reproduced exactly: slurp, pointer-parse,
/// convert, re-derive postings from the succinct label array.
LoadStats LegacySuccinctLoad(const std::string& path) {
  auto doc = SlurpAndParse(path);
  if (!doc.ok()) return {};
  SuccinctTree tree(*doc);
  LabelIndex postings(tree);
  const LabelIndex::MemoryStats m = postings.Memory();
  return {tree.num_nodes(), m.bytes, m.vector_bytes};
}

int Run(bool quick, const std::string& out_path) {
  XMarkOptions opt;
  opt.scale = XMarkScaleFromEnv(quick ? 0.02 : 0.45);
  const std::string path = "/tmp/xpwqo_bench_build.xml";
  std::printf("generating XMark document (scale %.3g)...\n", opt.scale);
  // Generate + serialize in a forked child: the parent's heap stays tiny,
  // so each measurement child's baseline is clean rather than inheriting a
  // retained allocator arena that would absorb (and hide) its allocations.
  PhaseResult gen = MeasureForked("generate", [&opt, &path]() -> LoadStats {
    Document doc = GenerateXMark(opt);
    Status st = WriteXmlFile(doc, path);
    return {st.ok() ? doc.num_nodes() : -1, 0, 0};
  });
  if (!gen.ok || gen.nodes < 0) {
    std::fprintf(stderr, "cannot generate %s\n", path.c_str());
    return 1;
  }
  const long nodes = gen.nodes;
  size_t xml_bytes = 0;
  {
    std::ifstream probe(path, std::ios::binary | std::ios::ate);
    xml_bytes = static_cast<size_t>(probe.tellg());
  }
  std::printf("document: %s nodes, %.1f MB XML\n",
              WithCommas(static_cast<uint64_t>(nodes)).c_str(),
              xml_bytes / 1e6);
  if (!quick && nodes < 1000000) {
    std::printf("warning: fewer than 1M nodes; raise XPWQO_SCALE\n");
  }

  // Quick runs shrink the chunk so the ~0.8 MB document still crosses many
  // boundaries and the refill path gets exercised in CI.
  const size_t chunk_bytes = quick ? size_t{4096} : size_t{1} << 20;
  std::vector<PhaseResult> results;
  results.push_back(
      MeasureForked("pointer", [&path, chunk_bytes]() -> LoadStats {
        LoadOptions load;
        load.parse.chunk_bytes = chunk_bytes;
        auto engine = Engine::FromXmlFile(path, load);
        return engine.ok() ? StatsOfEngine(*engine) : LoadStats{};
      }));
  results.push_back(MeasureForked("pointer_legacy", [&path]() -> LoadStats {
    return LegacyPointerLoad(path);
  }));
  results.push_back(
      MeasureForked("succinct_stream", [&path, chunk_bytes]() -> LoadStats {
        LoadOptions load;
        load.backend = TreeBackend::kSuccinct;
        load.parse.chunk_bytes = chunk_bytes;
        auto engine = Engine::FromXmlFile(path, load);
        return engine.ok() ? StatsOfEngine(*engine) : LoadStats{};
      }));
  results.push_back(MeasureForked("succinct_legacy", [&path]() -> LoadStats {
    return LegacySuccinctLoad(path);
  }));

  // Save an index image once (in a child, so the build's RSS stays out of
  // the parent), then measure reopening it: mmap + validation + directory
  // rebuilds, plus the first query on the freshly mapped engine.
  const std::string image_dir = "/tmp/xpwqo_bench_build_image";
  PhaseResult saved = MeasureForked(
      "save_image", [&path, chunk_bytes, &image_dir]() -> LoadStats {
        LoadOptions load;
        load.backend = TreeBackend::kSuccinct;
        load.parse.chunk_bytes = chunk_bytes;
        auto engine = Engine::FromXmlFile(path, load);
        if (!engine.ok() || !SaveIndexImage(*engine, image_dir).ok()) {
          return {};
        }
        return StatsOfEngine(*engine);
      });
  if (!saved.ok || saved.nodes != nodes) {
    std::fprintf(stderr, "cannot save the index image\n");
    return 1;
  }
  results.push_back(MeasureForked("image_open", [&image_dir]() -> LoadStats {
    const double open_start = NowMs();
    auto engine = OpenIndexImage(image_dir);
    const double open_ms = NowMs() - open_start;
    if (!engine.ok()) return {};
    LoadStats stats = StatsOfEngine(*engine);
    stats.load_ms = open_ms;
    const double start = NowMs();
    auto result = engine->Run("//keyword");
    if (!result.ok()) return {};
    stats.first_query_us = (NowMs() - start) * 1e3;
    return stats;
  }));

  // Stage-1 scanner in isolation: raw structural-index throughput over the
  // same bytes the parse pipelines consume. Best of three passes so the
  // number reflects the kernel, not the first pass's page faults.
  double scan_mb_per_s = 0;
  size_t scan_entries = 0;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string content = ss.str();
    StructuralTape tape;
    double best_ms = 0;
    for (int rep = 0; rep < 3; ++rep) {
      tape.Clear();
      const double start = NowMs();
      ScanStructural(content.data(), content.size(), 0, &tape);
      const double ms = NowMs() - start;
      if (rep == 0 || ms < best_ms) best_ms = ms;
    }
    scan_entries = tape.TotalEntries();
    if (best_ms > 0) scan_mb_per_s = content.size() / 1e6 / (best_ms / 1e3);
  }
  const char* scan_kernel = ScanKernelName(ActiveScanKernel());
  std::printf("\nsimd_scan (%s): %.0f MB/s, %zu structural indices\n",
              scan_kernel, scan_mb_per_s, scan_entries);

  // Bulk loading: N copies of the document through Collection::LoadAll at
  // 1/2/4/8 threads, each in a forked child. The shards are byte-identical
  // copies, so per-thread work is uniform and the scaling numbers measure
  // the pipeline (shared-alphabet interning is the only synchronized
  // point), not shard skew.
  const unsigned hardware_threads = std::thread::hardware_concurrency();
  const int kShards = 8;
  std::vector<std::string> shard_paths;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string content = ss.str();
    for (int i = 0; i < kShards; ++i) {
      shard_paths.push_back("/tmp/xpwqo_bench_shard_" + std::to_string(i) +
                            ".xml");
      std::ofstream out_shard(shard_paths.back(), std::ios::binary);
      out_shard << content;
    }
  }
  struct BulkRow {
    unsigned threads;
    double ms = 0;
    double mb_per_s = 0;
    double speedup = 0;
    double efficiency = 0;
    bool ok = false;
  };
  std::vector<BulkRow> bulk_rows;
  std::printf("\nbulk_load: %d shards x %.1f MB (%u hardware threads)\n",
              kShards, xml_bytes / 1e6, hardware_threads);
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    PhaseResult r = MeasureForked(
        "bulk_load_" + std::to_string(threads),
        [&shard_paths, threads, chunk_bytes, nodes]() -> LoadStats {
          std::vector<Collection::BulkLoadSpec> specs;
          for (size_t i = 0; i < shard_paths.size(); ++i) {
            Collection::BulkLoadSpec spec;
            spec.name = "shard" + std::to_string(i);
            spec.path = shard_paths[i];
            spec.options.backend = TreeBackend::kSuccinct;
            spec.options.parse.chunk_bytes = chunk_bytes;
            specs.push_back(std::move(spec));
          }
          Collection library;
          const double start = NowMs();
          Collection::BulkLoadReport report = library.LoadAll(specs, threads);
          const double ms = NowMs() - start;
          if (report.failed != 0 ||
              report.loaded != shard_paths.size()) {
            return {};
          }
          LoadStats stats;
          stats.nodes = nodes;  // per-shard count; signals success upstream
          stats.load_ms = ms;
          return stats;
        });
    BulkRow row;
    row.threads = threads;
    row.ok = r.ok && r.nodes == nodes;
    row.ms = r.ms;
    if (row.ok && r.ms > 0) {
      row.mb_per_s = kShards * (xml_bytes / 1e6) / (r.ms / 1e3);
      if (!bulk_rows.empty() && bulk_rows[0].ok && bulk_rows[0].ms > 0) {
        row.speedup = bulk_rows[0].ms / r.ms;
        row.efficiency = row.speedup / threads;
      } else if (threads == 1) {
        row.speedup = 1.0;
        row.efficiency = 1.0;
      }
    }
    std::printf("  %u thread%s %10.1f ms %8.1f MB/s  speedup %.2fx  "
                "efficiency %.0f%%\n",
                threads, threads == 1 ? ": " : "s:", row.ms, row.mb_per_s,
                row.speedup, row.efficiency * 100);
    bulk_rows.push_back(row);
  }
  const bool bulk_ok =
      std::all_of(bulk_rows.begin(), bulk_rows.end(),
                  [](const BulkRow& r) { return r.ok; });

  // A failed fork/child leaves ms == 0; keep the division (and the JSON
  // below) finite.
  auto mb_per_s = [xml_bytes](const PhaseResult& r) {
    return r.ms > 0 ? xml_bytes / 1e6 / (r.ms / 1e3) : 0.0;
  };
  std::printf("\n%-16s %10s %10s %12s %10s %10s %12s\n", "pipeline", "ms",
              "MB/s", "peak-MB", "lidx-MB", "lvec-MB", "nodes");
  bool all_ok = true;
  for (const PhaseResult& r : results) {
    all_ok = all_ok && r.ok && r.nodes == nodes;
    std::printf("%-16s %10.1f %10.1f %12.1f %10.2f %10.2f %12s\n",
                r.name.c_str(), r.ms, mb_per_s(r), r.peak_delta_mb,
                r.label_index_mb, r.label_index_vector_mb,
                WithCommas(static_cast<uint64_t>(std::max(0L, r.nodes)))
                    .c_str());
  }
  const double legacy_peak = results[3].peak_delta_mb;
  const double stream_peak = results[2].peak_delta_mb;
  const double peak_ratio =
      stream_peak > 0 ? legacy_peak / stream_peak : 0;
  // Streamed pointer load relative to the pre-streaming one (>= 0.95 keeps
  // the "no pointer throughput regression" acceptance bar).
  const double pointer_speed_ratio =
      results[0].ms > 0 ? results[1].ms / results[0].ms : 0;
  // Postings compression on the streamed succinct load: vector-baseline
  // bytes over compressed bytes (the ISSUE-4 acceptance bar is >= 3x).
  const double label_compression =
      results[2].label_index_mb > 0
          ? results[2].label_index_vector_mb / results[2].label_index_mb
          : 0;
  // Reopening the saved image vs rebuilding the same succinct engine from
  // XML (the acceptance bar for the persistent format is >= 20x).
  const double image_open_speedup =
      results[4].ms > 0 ? results[2].ms / results[4].ms : 0;
  std::printf("\npeak memory, legacy succinct load vs streamed: %.1fx\n",
              peak_ratio);
  std::printf("pointer throughput, streamed vs legacy: %.2fx\n",
              pointer_speed_ratio);
  std::printf("label index, vector baseline vs compressed: %.2fx\n",
              label_compression);
  std::printf(
      "image open vs succinct rebuild: %.1fx (first query %.0f us)\n",
      image_open_speedup, results[4].first_query_us);
  all_ok = all_ok && bulk_ok;
  if (!all_ok) std::printf("WARNING: a pipeline failed or node counts differ\n");

  FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n  \"bench\": \"build\",\n  \"quick\": %s,\n"
               "  \"scale\": %.6g,\n  \"nodes\": %ld,\n"
               "  \"xml_bytes\": %zu,\n  \"results\": [\n",
               quick ? "true" : "false", opt.scale, nodes, xml_bytes);
  for (size_t i = 0; i < results.size(); ++i) {
    const PhaseResult& r = results[i];
    std::fprintf(out,
                 "    {\"pipeline\": \"%s\", \"ms\": %.1f, "
                 "\"mb_per_s\": %.2f, \"peak_rss_mb\": %.2f, "
                 "\"label_index_mb\": %.3f, "
                 "\"label_index_vector_mb\": %.3f, "
                 "\"first_query_us\": %.1f}%s\n",
                 r.name.c_str(), r.ms, mb_per_s(r), r.peak_delta_mb,
                 r.label_index_mb, r.label_index_vector_mb, r.first_query_us,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n  \"peak_ratio_legacy_vs_stream\": %.2f,\n"
               "  \"pointer_speed_vs_legacy\": %.2f,\n"
               "  \"label_index_compression\": %.2f,\n"
               "  \"image_open_speedup_vs_rebuild\": %.2f,\n",
               peak_ratio, pointer_speed_ratio, label_compression,
               image_open_speedup);
  std::fprintf(out,
               "  \"hardware_threads\": %u,\n"
               "  \"simd_scan\": {\"kernel\": \"%s\", \"mb_per_s\": %.1f, "
               "\"entries\": %zu},\n",
               hardware_threads, scan_kernel, scan_mb_per_s, scan_entries);
  std::fprintf(out,
               "  \"bulk_load\": {\"shards\": %d, \"shard_bytes\": %zu, "
               "\"all_rows_ok\": %s, \"series\": [\n",
               kShards, xml_bytes, bulk_ok ? "true" : "false");
  for (size_t i = 0; i < bulk_rows.size(); ++i) {
    const BulkRow& r = bulk_rows[i];
    std::fprintf(out,
                 "    {\"threads\": %u, \"ms\": %.1f, \"mb_per_s\": %.1f, "
                 "\"speedup\": %.3f, \"efficiency\": %.3f}%s\n",
                 r.threads, r.ms, r.mb_per_s, r.speedup, r.efficiency,
                 i + 1 < bulk_rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]}\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  std::remove(path.c_str());
  for (const std::string& shard : shard_paths) std::remove(shard.c_str());
  std::remove((image_dir + "/" + persist::kIndexImageFile).c_str());
  ::rmdir(image_dir.c_str());
  return all_ok ? 0 : 1;
}

}  // namespace
}  // namespace xpwqo

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_build.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out PATH]\n", argv[0]);
      return 2;
    }
  }
  return xpwqo::Run(quick, out_path);
}
