// Reproduces Figure 5: hybrid vs regular (top-down+bottom-up) evaluation of
// //listitem//keyword//emph over the four hand-crafted configurations A-D,
// reporting evaluation times and the selected/visited-node table.
#include <cstdio>

#include "bench_util.h"
#include "util/strings.h"
#include "xmark/fig5_configs.h"

namespace xpwqo {
namespace {

constexpr const char* kQuery = "//listitem//keyword//emph";

int Main() {
  std::printf("== Figure 5: hybrid vs regular evaluation of %s ==\n\n",
              kQuery);
  std::printf("%-3s %10s %10s %12s %12s %12s %6s %10s\n", "cfg",
              "hybrid(ms)", "regular(ms)", "(1)selected", "(2)hyb-visit",
              "(3)reg-visit", "pivot", "pivot-cnt");
  for (Fig5Config config : {Fig5Config::kA, Fig5Config::kB, Fig5Config::kC,
                            Fig5Config::kD}) {
    Engine engine = Engine::FromDocument(BuildFig5Config(config));
    auto compiled = engine.Compile(kQuery);
    if (!compiled.ok()) return 1;

    QueryOptions hybrid_opt;
    hybrid_opt.strategy = EvalStrategy::kHybrid;
    QueryOptions regular_opt;
    regular_opt.strategy = EvalStrategy::kOptimized;

    QueryResult hybrid_result, regular_result;
    double hybrid_ms = bench::BestOfMs([&] {
      hybrid_result = std::move(engine.Run(*compiled, hybrid_opt)).value();
    });
    double regular_ms = bench::BestOfMs([&] {
      regular_result = std::move(engine.Run(*compiled, regular_opt)).value();
    });
    if (hybrid_result.nodes != regular_result.nodes) {
      std::printf("MISMATCH in configuration %s!\n", Fig5ConfigName(config));
      return 1;
    }
    std::printf("%-3s %10.3f %10.3f %12s %12s %12s %6d %10s\n",
                Fig5ConfigName(config), hybrid_ms, regular_ms,
                WithCommas(hybrid_result.nodes.size()).c_str(),
                WithCommas(static_cast<uint64_t>(
                               hybrid_result.hybrid.nodes_visited))
                    .c_str(),
                WithCommas(static_cast<uint64_t>(
                               regular_result.stats.nodes_visited))
                    .c_str(),
                hybrid_result.hybrid.pivot,
                WithCommas(static_cast<uint64_t>(
                               hybrid_result.hybrid.pivot_count))
                    .c_str());
  }
  std::printf(
      "\npaper shape: A and B are the hybrid's best cases (a rare label to "
      "start from:\nfew visits); C degenerates to the regular run (pivot = "
      "first label); D is the\nhybrid worst case, where the regular run's "
      "jumping makes it competitive despite\nvisiting more nodes.\n");
  return 0;
}

}  // namespace
}  // namespace xpwqo

int main() { return xpwqo::Main(); }
