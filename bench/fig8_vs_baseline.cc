// Reproduces Figure 8 (Appendix D): query answering time of the automaton
// engine ("SXSI") against a step-wise node-set engine standing in for
// MonetDB/XQuery, for Q01-Q15. Best of 5 runs, results materialized but not
// serialized — the paper's protocol.
#include <cstdio>

#include "bench_util.h"
#include "util/strings.h"

namespace xpwqo {
namespace {

int Main() {
  const Engine& engine = bench::XMarkEngine();
  bench::PrintHeader(
      "Figure 8: automaton engine (SXSI) vs step-wise node-set baseline "
      "(MonetDB substitute)",
      engine);
  std::printf("%-5s %12s %14s %8s %10s\n", "query", "sxsi(ms)",
              "baseline(ms)", "speedup", "selected");
  double total_sxsi = 0, total_base = 0;
  for (const WorkloadQuery& q : Figure2Workload()) {
    auto compiled = engine.Compile(q.xpath);
    if (!compiled.ok()) return 1;
    QueryOptions opt;
    opt.strategy = EvalStrategy::kOptimized;
    QueryOptions base;
    base.strategy = EvalStrategy::kBaseline;
    size_t selected = 0;
    double sxsi_ms = bench::BestOfMs([&] {
      auto r = engine.Run(*compiled, opt);
      selected = r.ok() ? r->nodes.size() : 0;
    });
    size_t base_selected = 0;
    double base_ms = bench::BestOfMs([&] {
      auto r = engine.Run(*compiled, base);
      base_selected = r.ok() ? r->nodes.size() : 0;
    });
    if (selected != base_selected) {
      std::printf("MISMATCH on %s\n", q.id);
      return 1;
    }
    total_sxsi += sxsi_ms;
    total_base += base_ms;
    std::printf("%-5s %12.3f %14.3f %7.1fx %10s\n", q.id, sxsi_ms, base_ms,
                sxsi_ms > 0 ? base_ms / sxsi_ms : 0.0,
                WithCommas(selected).c_str());
  }
  std::printf("%-5s %12.3f %14.3f %7.1fx\n", "all", total_sxsi, total_base,
              total_sxsi > 0 ? total_base / total_sxsi : 0.0);
  std::printf(
      "\npaper shape: the automaton engine wins on every query, most "
      "dramatically on\nselective ones (MonetDB's worst case in the paper "
      "was Q08 at 1042ms vs <40ms).\n");
  return 0;
}

}  // namespace
}  // namespace xpwqo

int main() { return xpwqo::Main(); }
