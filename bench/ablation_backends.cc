// Ablation for the succinct-tree claim (§1): pointer structures blow up
// memory 5-10x, succinct trees avoid this at some navigation cost. Compares
// memory per node and memoized (firstChild/nextSibling-only) evaluation
// time over both backends.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "asta/eval.h"
#include "bench_util.h"
#include "index/succinct_tree.h"
#include "util/strings.h"
#include "xpath/compile.h"
#include "xpath/parser.h"

namespace xpwqo {
namespace {

const SuccinctTree& SharedSuccinctTree() {
  static SuccinctTree* tree =
      new SuccinctTree(bench::XMarkEngine().document());
  return *tree;
}

const TreeIndex& SharedSuccinctIndex() {
  static TreeIndex* index = new TreeIndex(SharedSuccinctTree());
  return *index;
}

Asta CompileQuery(const char* xpath) {
  auto path = ParseXPath(xpath);
  auto asta = CompileToAsta(
      *path, bench::XMarkEngine().document().alphabet_ptr().get());
  return std::move(asta).value();
}

void BM_PointerBackend(benchmark::State& state, const char* xpath) {
  const Engine& engine = bench::XMarkEngine();
  Asta asta = CompileQuery(xpath);
  AstaEvalOptions options{false, true, true};  // memoized, no jumping
  for (auto _ : state) {
    AstaEvalResult r = EvalAsta(asta, engine.document(), nullptr, options);
    benchmark::DoNotOptimize(r.nodes.data());
  }
}

void BM_SuccinctBackend(benchmark::State& state, const char* xpath) {
  const SuccinctTree& tree = SharedSuccinctTree();
  Asta asta = CompileQuery(xpath);
  AstaEvalOptions options{false, true, true};
  for (auto _ : state) {
    AstaEvalResult r = EvalAstaSuccinct(asta, tree, nullptr, options);
    benchmark::DoNotOptimize(r.nodes.data());
  }
}

void BM_PointerBackendOpt(benchmark::State& state, const char* xpath) {
  const Engine& engine = bench::XMarkEngine();
  Asta asta = CompileQuery(xpath);
  AstaEvalOptions options{true, true, true};  // jumping + memo + infoprop
  for (auto _ : state) {
    AstaEvalResult r =
        EvalAsta(asta, engine.document(), &engine.index(), options);
    benchmark::DoNotOptimize(r.nodes.data());
  }
}

void BM_SuccinctBackendOpt(benchmark::State& state, const char* xpath) {
  const SuccinctTree& tree = SharedSuccinctTree();
  const TreeIndex& index = SharedSuccinctIndex();
  Asta asta = CompileQuery(xpath);
  AstaEvalOptions options{true, true, true};
  for (auto _ : state) {
    AstaEvalResult r = EvalAstaSuccinct(asta, tree, &index, options);
    benchmark::DoNotOptimize(r.nodes.data());
  }
}

void BM_PointerNavigation(benchmark::State& state) {
  const Document& doc = bench::XMarkEngine().document();
  for (auto _ : state) {
    int64_t checksum = 0;
    for (NodeId n = 0; n < doc.num_nodes(); ++n) {
      checksum += doc.BinaryLeft(n) + doc.BinaryRight(n);
    }
    benchmark::DoNotOptimize(checksum);
  }
  state.SetItemsProcessed(state.iterations() * doc.num_nodes());
}

void BM_SuccinctNavigation(benchmark::State& state) {
  const SuccinctTree& tree = SharedSuccinctTree();
  for (auto _ : state) {
    int64_t checksum = 0;
    for (NodeId n = 0; n < tree.num_nodes(); ++n) {
      checksum += tree.BinaryLeft(n) + tree.BinaryRight(n);
    }
    benchmark::DoNotOptimize(checksum);
  }
  state.SetItemsProcessed(state.iterations() * tree.num_nodes());
}

void RegisterAll() {
  benchmark::RegisterBenchmark("Navigation/pointer", BM_PointerNavigation)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("Navigation/succinct", BM_SuccinctNavigation)
      ->Unit(benchmark::kMillisecond);
  for (const char* q : {"//listitem//keyword", "/site//keyword"}) {
    benchmark::RegisterBenchmark(
        (std::string("MemoEval/pointer/") + q).c_str(),
        [q](benchmark::State& s) { BM_PointerBackend(s, q); })
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        (std::string("MemoEval/succinct/") + q).c_str(),
        [q](benchmark::State& s) { BM_SuccinctBackend(s, q); })
        ->Unit(benchmark::kMillisecond);
    // Jumping on both backends: the succinct TreeIndex makes the opt
    // configuration comparable, not just the stepping one.
    benchmark::RegisterBenchmark(
        (std::string("OptEval/pointer/") + q).c_str(),
        [q](benchmark::State& s) { BM_PointerBackendOpt(s, q); })
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        (std::string("OptEval/succinct/") + q).c_str(),
        [q](benchmark::State& s) { BM_SuccinctBackendOpt(s, q); })
        ->Unit(benchmark::kMillisecond);
  }
}

void PrintMemoryReport() {
  const Document& doc = bench::XMarkEngine().document();
  const SuccinctTree& tree = SharedSuccinctTree();
  double n = static_cast<double>(doc.num_nodes());
  std::printf("memory: pointer tree %s bytes (%.1f B/node), succinct "
              "topology+labels %s bytes (%.1f B/node)\n\n",
              WithCommas(doc.MemoryUsage()).c_str(), doc.MemoryUsage() / n,
              WithCommas(tree.MemoryUsage()).c_str(),
              tree.MemoryUsage() / n);
}

}  // namespace
}  // namespace xpwqo

int main(int argc, char** argv) {
  xpwqo::bench::PrintHeader("Ablation: pointer vs succinct tree backend",
                            xpwqo::bench::XMarkEngine());
  xpwqo::PrintMemoryReport();
  xpwqo::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
