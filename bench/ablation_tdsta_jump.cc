// Ablation for Section 3: minimal deterministic TDSTAs evaluated by the
// full top-down run vs the jumping run of Algorithm B.1 (Theorem 3.1), and
// the bottom-up runs of Algorithm B.2 with and without subtree skipping.
#include <cstdio>

#include "bench_util.h"
#include "sta/bottomup.h"
#include "sta/examples.h"
#include "sta/minimize.h"
#include "sta/run.h"
#include "sta/topdown_jump.h"
#include "util/strings.h"
#include "xpath/compile_sta.h"
#include "xpath/parser.h"

namespace xpwqo {
namespace {

int Main() {
  const Engine& engine = bench::XMarkEngine();
  bench::PrintHeader(
      "Ablation: deterministic STA evaluation (Theorem 3.1 jumping; "
      "Algorithm B.2 bottom-up)",
      engine);
  const Document& doc = engine.document();
  const TreeIndex& index = engine.index();

  std::printf("-- top-down: full run vs topdown_jump --\n");
  std::printf("%-40s %10s %10s %12s %12s %10s\n", "query", "full(ms)",
              "jump(ms)", "visited", "selected", "jumps");
  const char* queries[] = {
      "/site/regions",
      "/site/regions/europe/item",
      "//listitem//keyword",
      "//parlist//keyword",
      "/site/people/person",
  };
  for (const char* q : queries) {
    auto parsed = ParseXPath(q);
    auto sta = CompileToTdsta(*parsed, doc.alphabet_ptr().get());
    if (!sta.ok()) {
      std::printf("%-40s (out of TDSTA fragment)\n", q);
      continue;
    }
    Sta minimal = MinimizeTopDown(*sta);
    StaRunResult full;
    double full_ms =
        bench::BestOfMs([&] { full = TopDownRun(minimal, doc); });
    JumpRunResult jump;
    double jump_ms =
        bench::BestOfMs([&] { jump = TopDownJumpRun(minimal, doc, index); });
    if (jump.selected != full.selected) {
      std::printf("MISMATCH on %s\n", q);
      return 1;
    }
    std::printf("%-40s %10.3f %10.3f %12s %12s %10s\n", q, full_ms, jump_ms,
                WithCommas(static_cast<uint64_t>(jump.stats.nodes_visited))
                    .c_str(),
                WithCommas(jump.selected.size()).c_str(),
                WithCommas(static_cast<uint64_t>(jump.stats.jumps)).c_str());
  }

  std::printf("\n-- bottom-up: Algorithm B.2 vs skipping run (//a[.//b] "
              "family) --\n");
  std::printf("%-30s %10s %10s %12s\n", "automaton", "list(ms)", "skip(ms)",
              "skip-visited");
  struct BuCase {
    const char* name;
    const char* above;
    const char* below;
  };
  const BuCase cases[] = {
      {"//listitem[.//keyword]", "listitem", "keyword"},
      {"//item[.//emph]", "item", "emph"},
      {"//person[.//zipcode]", "person", "zipcode"},
  };
  for (const BuCase& c : cases) {
    LabelId above = doc.alphabet().Find(c.above);
    LabelId below = doc.alphabet().Find(c.below);
    if (above == kNoLabel || below == kNoLabel) continue;
    Sta sta = StaForAWithBDescendant(above, below);
    StaRunResult list;
    double list_ms = bench::BestOfMs([&] { list = BottomUpListRun(sta, doc); });
    JumpRunResult skip;
    double skip_ms =
        bench::BestOfMs([&] { skip = BottomUpSkipRun(sta, doc, index); });
    if (list.selected != skip.selected) {
      std::printf("MISMATCH on %s\n", c.name);
      return 1;
    }
    std::printf("%-30s %10.3f %10.3f %12s\n", c.name, list_ms, skip_ms,
                WithCommas(static_cast<uint64_t>(skip.stats.nodes_visited))
                    .c_str());
  }
  std::printf("\nshape: the jumping run visits a small fraction of the "
              "document for selective\nqueries and never loses results.\n");
  return 0;
}

}  // namespace
}  // namespace xpwqo

int main() { return xpwqo::Main(); }
