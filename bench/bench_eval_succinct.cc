// Succinct-engine evaluation benchmark: the paper's speed/space point,
// measured instead of asserted. Runs the Figure-2 workload on an XMark
// document over the succinct backend with jumping off vs. on (both through
// the memoized ASTA evaluator), and the jumping+memoized (opt) evaluator on
// the succinct vs. the pointer backend. All three configurations must select
// identical node sets; a mismatch fails the run.
//
// Usage: bench_eval_succinct [--quick] [--out PATH]
//   --quick  small document + fewer repeats (CI smoke run)
//   --out    where to write the JSON report (default BENCH_eval_succinct.json)
// XPWQO_SCALE overrides the document scale (default 0.2).
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "asta/eval.h"
#include "bench_util.h"
#include "index/succinct_tree.h"
#include "index/tree_index.h"
#include "util/strings.h"
#include "xmark/generator.h"
#include "xmark/workload.h"
#include "xpath/compile.h"
#include "xpath/parser.h"

namespace xpwqo {
namespace {

struct QueryResultRow {
  const char* id;
  const char* xpath;
  double succinct_nojump_ms = 0;
  double succinct_jump_ms = 0;
  double pointer_jump_ms = 0;
  size_t selected = 0;
  bool match = true;

  double jump_speedup() const {
    return succinct_nojump_ms / succinct_jump_ms;
  }
  double succinct_vs_pointer() const {
    return succinct_jump_ms / pointer_jump_ms;
  }
};

int Run(bool quick, const std::string& out_path) {
  XMarkOptions opt;
  opt.scale = XMarkScaleFromEnv(quick ? 0.02 : 0.2);
  std::printf("generating XMark document (scale %.3g)...\n", opt.scale);
  Document doc = GenerateXMark(opt);
  std::printf("document: %s nodes\n",
              WithCommas(static_cast<uint64_t>(doc.num_nodes())).c_str());

  TreeIndex pointer_index(doc);
  SuccinctTree tree(doc);
  TreeIndex succinct_index(tree);
  const int repeats = quick ? 3 : 5;

  // Index-memory report: the compressed postings against the plain-vector
  // baseline they replaced, next to the succinct tree itself.
  const LabelIndex::MemoryStats postings = succinct_index.labels().Memory();
  std::printf(
      "label index: %.2f MB compressed (%.2f MB as vectors, %.2fx; "
      "%zu dense / %zu sparse labels); succinct tree: %.2f MB\n",
      postings.bytes / 1e6, postings.vector_bytes / 1e6,
      postings.bytes > 0
          ? static_cast<double>(postings.vector_bytes) / postings.bytes
          : 0.0,
      postings.dense_labels, postings.sparse_labels,
      tree.MemoryUsage() / 1e6);

  const AstaEvalOptions kNoJump{false, true, true};
  const AstaEvalOptions kJump{true, true, true};

  std::vector<QueryResultRow> rows;
  bool all_match = true;
  for (const WorkloadQuery& wq : Figure2Workload()) {
    auto path = ParseXPath(wq.xpath);
    if (!path.ok()) continue;
    auto asta = CompileToAsta(*path, doc.alphabet_ptr().get());
    if (!asta.ok()) continue;

    QueryResultRow row;
    row.id = wq.id;
    row.xpath = wq.xpath;

    AstaEvalResult nojump, jump, pointer;
    row.succinct_nojump_ms = bench::BestOfMs(
        [&] { nojump = EvalAstaSuccinct(*asta, tree, nullptr, kNoJump); },
        repeats);
    row.succinct_jump_ms = bench::BestOfMs(
        [&] { jump = EvalAstaSuccinct(*asta, tree, &succinct_index, kJump); },
        repeats);
    row.pointer_jump_ms = bench::BestOfMs(
        [&] { pointer = EvalAsta(*asta, doc, &pointer_index, kJump); },
        repeats);
    row.selected = jump.nodes.size();
    row.match = jump.nodes == nojump.nodes && jump.nodes == pointer.nodes;
    all_match = all_match && row.match;
    rows.push_back(row);

    std::printf(
        "%-4s nojump %8.3f ms  jump %8.3f ms (%5.2fx)  pointer-opt %8.3f ms"
        "  [%zu nodes]%s\n",
        row.id, row.succinct_nojump_ms, row.succinct_jump_ms,
        row.jump_speedup(), row.pointer_jump_ms, row.selected,
        row.match ? "" : "  MISMATCH");
  }

  double log_jump = 0, log_sp = 0;
  for (const QueryResultRow& r : rows) {
    log_jump += std::log(r.jump_speedup());
    log_sp += std::log(r.succinct_vs_pointer());
  }
  const double n = static_cast<double>(rows.size());
  const double geo_jump = std::exp(log_jump / n);
  const double geo_sp = std::exp(log_sp / n);
  std::printf(
      "\ngeomean: jumping speeds up the succinct backend %.2fx; "
      "succinct opt eval costs %.2fx the pointer opt eval\n",
      geo_jump, geo_sp);
  std::printf("results: %s\n", all_match ? "all configurations agree"
                                         : "MISMATCH");

  FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n  \"bench\": \"eval_succinct\",\n  \"quick\": %s,\n"
               "  \"scale\": %.6g,\n  \"nodes\": %d,\n"
               "  \"all_match\": %s,\n"
               "  \"geomean_jump_speedup\": %.3f,\n"
               "  \"geomean_succinct_vs_pointer\": %.3f,\n"
               "  \"label_index_bytes\": %zu,\n"
               "  \"label_index_vector_bytes\": %zu,\n"
               "  \"label_index_compression\": %.3f,\n"
               "  \"dense_labels\": %zu,\n  \"sparse_labels\": %zu,\n"
               "  \"succinct_tree_bytes\": %zu,\n"
               "  \"results\": [\n",
               quick ? "true" : "false", opt.scale, doc.num_nodes(),
               all_match ? "true" : "false", geo_jump, geo_sp,
               postings.bytes, postings.vector_bytes,
               postings.bytes > 0
                   ? static_cast<double>(postings.vector_bytes) /
                         postings.bytes
                   : 0.0,
               postings.dense_labels, postings.sparse_labels,
               tree.MemoryUsage());
  for (size_t i = 0; i < rows.size(); ++i) {
    const QueryResultRow& r = rows[i];
    std::fprintf(out,
                 "    {\"query\": \"%s\", \"succinct_nojump_ms\": %.4f, "
                 "\"succinct_jump_ms\": %.4f, \"pointer_jump_ms\": %.4f, "
                 "\"jump_speedup\": %.3f, \"selected\": %zu, "
                 "\"match\": %s}%s\n",
                 r.id, r.succinct_nojump_ms, r.succinct_jump_ms,
                 r.pointer_jump_ms, r.jump_speedup(), r.selected,
                 r.match ? "true" : "false",
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return all_match ? 0 : 1;
}

}  // namespace
}  // namespace xpwqo

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_eval_succinct.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out PATH]\n", argv[0]);
      return 2;
    }
  }
  return xpwqo::Run(quick, out_path);
}
