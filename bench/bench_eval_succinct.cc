// Succinct-engine evaluation benchmark: the paper's speed/space point,
// measured instead of asserted. Runs the Figure-2 workload on an XMark
// document over the succinct backend with jumping off vs. on (both through
// the memoized ASTA evaluator), and the jumping+memoized (opt) evaluator on
// the succinct vs. the pointer backend. All three configurations must select
// identical node sets; a mismatch fails the run.
//
// Usage: bench_eval_succinct [--quick] [--out PATH]
//   --quick  small document + fewer repeats (CI smoke run)
//   --out    where to write the JSON report (default BENCH_eval_succinct.json)
// XPWQO_SCALE overrides the document scale (default 0.2).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "asta/eval.h"
#include "baseline/nodeset_eval.h"
#include "bench_util.h"
#include "core/cursor.h"
#include "core/prepared_query.h"
#include "index/succinct_tree.h"
#include "index/text_store.h"
#include "index/tree_index.h"
#include "util/strings.h"
#include "xmark/generator.h"
#include "xmark/workload.h"
#include "xpath/compile.h"
#include "xpath/parser.h"

namespace xpwqo {
namespace {

/// One LIMIT-k measurement through the streaming ResultCursor.
struct LimitPoint {
  size_t k = 0;
  double us = 0;          // open cursor + pull k results
  int64_t visited = 0;    // nodes driven up to the k-th match
  size_t returned = 0;
};

/// The serving-latency series: first-match and LIMIT-k times over
/// jump-friendly descendant chains, where the cursor's region streaming
/// stops after the region containing the k-th match.
struct LimitSeriesRow {
  const char* id;
  const char* xpath;
  double first_match_us = 0;
  double full_ms = 0;
  int64_t full_visited = 0;
  size_t selected = 0;
  bool prefix_ok = true;  // truncated drains are prefixes of the full run
  LimitPoint points[3];
};

/// The content-layer series: value-predicate queries evaluated as a
/// relaxed structural plan plus the TextStore-backed post-filter.
struct PredicateSeriesRow {
  const char* id;
  const char* xpath;
  double full_ms = 0;
  double first_match_us = 0;
  int64_t filter_checked = 0;
  int64_t filter_rejected = 0;
  size_t selected = 0;
  bool match = true;  // agrees with the pointer baseline's native answer
};

struct QueryResultRow {
  const char* id;
  const char* xpath;
  double succinct_nojump_ms = 0;
  double succinct_jump_ms = 0;
  double pointer_jump_ms = 0;
  size_t selected = 0;
  bool match = true;

  double jump_speedup() const {
    return succinct_nojump_ms / succinct_jump_ms;
  }
  double succinct_vs_pointer() const {
    return succinct_jump_ms / pointer_jump_ms;
  }
};

int Run(bool quick, const std::string& out_path) {
  XMarkOptions opt;
  opt.scale = XMarkScaleFromEnv(quick ? 0.02 : 0.2);
  std::printf("generating XMark document (scale %.3g)...\n", opt.scale);
  Document doc = GenerateXMark(opt);
  std::printf("document: %s nodes\n",
              WithCommas(static_cast<uint64_t>(doc.num_nodes())).c_str());

  TreeIndex pointer_index(doc);
  SuccinctTree tree(doc);
  TreeIndex succinct_index(tree);
  const int repeats = quick ? 3 : 5;

  // Index-memory report: the compressed postings against the plain-vector
  // baseline they replaced, next to the succinct tree itself.
  const LabelIndex::MemoryStats postings = succinct_index.labels().Memory();
  std::printf(
      "label index: %.2f MB compressed (%.2f MB as vectors, %.2fx; "
      "%zu dense / %zu sparse labels); succinct tree: %.2f MB\n",
      postings.bytes / 1e6, postings.vector_bytes / 1e6,
      postings.bytes > 0
          ? static_cast<double>(postings.vector_bytes) / postings.bytes
          : 0.0,
      postings.dense_labels, postings.sparse_labels,
      tree.MemoryUsage() / 1e6);

  const AstaEvalOptions kNoJump{false, true, true};
  const AstaEvalOptions kJump{true, true, true};

  std::vector<QueryResultRow> rows;
  bool all_match = true;
  for (const WorkloadQuery& wq : Figure2Workload()) {
    auto path = ParseXPath(wq.xpath);
    if (!path.ok()) continue;
    auto asta = CompileToAsta(*path, doc.alphabet_ptr().get());
    if (!asta.ok()) continue;

    QueryResultRow row;
    row.id = wq.id;
    row.xpath = wq.xpath;

    AstaEvalResult nojump, jump, pointer;
    row.succinct_nojump_ms = bench::BestOfMs(
        [&] { nojump = EvalAstaSuccinct(*asta, tree, nullptr, kNoJump); },
        repeats);
    row.succinct_jump_ms = bench::BestOfMs(
        [&] { jump = EvalAstaSuccinct(*asta, tree, &succinct_index, kJump); },
        repeats);
    row.pointer_jump_ms = bench::BestOfMs(
        [&] { pointer = EvalAsta(*asta, doc, &pointer_index, kJump); },
        repeats);
    row.selected = jump.nodes.size();
    row.match = jump.nodes == nojump.nodes && jump.nodes == pointer.nodes;
    all_match = all_match && row.match;
    rows.push_back(row);

    std::printf(
        "%-4s nojump %8.3f ms  jump %8.3f ms (%5.2fx)  pointer-opt %8.3f ms"
        "  [%zu nodes]%s\n",
        row.id, row.succinct_nojump_ms, row.succinct_jump_ms,
        row.jump_speedup(), row.pointer_jump_ms, row.selected,
        row.match ? "" : "  MISMATCH");
  }

  // ------------------------------------------------------------ LIMIT-k
  // The serving series: open a streaming cursor, pull k results, stop. The
  // interesting numbers are the first-match latency vs. the full-run time
  // and the visited-node counts scaling with k instead of with |D|.
  const struct {
    const char* id;
    const char* xpath;
  } kLimitQueries[] = {
      {"L1", "//listitem//keyword"},
      {"L2", "//keyword"},
      {"L3", "//parlist//listitem"},
  };
  const size_t kLimits[3] = {1, 10, 1000};
  std::vector<LimitSeriesRow> limit_rows;
  std::printf("\nLIMIT-k via ResultCursor (succinct backend, optimized):\n");
  for (const auto& lq : kLimitQueries) {
    auto prepared = PreparedQuery::Prepare(lq.xpath, doc.alphabet_ptr());
    if (!prepared.ok()) continue;
    LimitSeriesRow row;
    row.id = lq.id;
    row.xpath = lq.xpath;

    AstaEvalResult full;
    row.full_ms = bench::BestOfMs(
        [&] {
          full = EvalAstaSuccinct(prepared->asta(), tree, &succinct_index,
                                  kJump);
        },
        repeats);
    row.full_visited = full.stats.nodes_visited;
    row.selected = full.nodes.size();

    const internal::CursorContext ctx{nullptr, &tree, &succinct_index};
    const QueryOptions opts;  // optimized
    for (size_t i = 0; i < 3; ++i) {
      const size_t k = kLimits[i];
      LimitPoint& point = row.points[i];
      point.k = k;
      std::vector<NodeId> head;
      point.us =
          1000.0 * bench::BestOfMs(
                       [&] {
                         auto impl = internal::MakeCursorImpl(
                             ctx, *prepared, opts, /*allow_streaming=*/true);
                         ResultCursor cursor(std::move(*impl));
                         head = cursor.Drain(k);
                         point.visited =
                             cursor.TakeStats().eval.nodes_visited;
                       },
                       repeats);
      point.returned = head.size();
      row.prefix_ok =
          row.prefix_ok &&
          head.size() == std::min(k, full.nodes.size()) &&
          std::equal(head.begin(), head.end(), full.nodes.begin());
    }
    row.first_match_us = row.points[0].us;
    all_match = all_match && row.prefix_ok;
    limit_rows.push_back(row);

    std::printf(
        "%-4s first match %8.1f us (%lld visited)  k=10 %8.1f us  "
        "k=1000 %8.1f us  full %8.3f ms (%lld visited, %zu nodes)%s\n",
        row.id, row.first_match_us,
        static_cast<long long>(row.points[0].visited), row.points[1].us,
        row.points[2].us, row.full_ms,
        static_cast<long long>(row.full_visited), row.selected,
        row.prefix_ok ? "" : "  PREFIX MISMATCH");
  }

  // --------------------------------------------------- value predicates
  // The content layer at work: each query relaxes to its structural
  // skeleton for the jumping plan, and the post-filter re-verifies every
  // candidate against TextStore values. filter_checked/filter_rejected
  // expose how much re-verification the relaxation bought.
  TextStore text = TextStore::FromDocument(doc);
  std::printf("\ntext store: %.2f MB (%s values)\n", text.MemoryUsage() / 1e6,
              WithCommas(text.num_values()).c_str());
  const struct {
    const char* id;
    const char* xpath;
  } kPredicateQueries[] = {
      {"V1", "//person[@id='person0']"},
      {"V2", "//keyword[contains(text(),'gamboge')]"},
      {"V3", "//item[contains(location/text(),'eagle')]"},
      {"V4", "//open_auction[.//increase/text()='dagger']/seller"},
      {"V5", "//item[not(contains(location/text(),'a'))]"},
  };
  std::vector<PredicateSeriesRow> pred_rows;
  std::printf("value predicates via relaxed plan + TextStore filter:\n");
  for (const auto& pq : kPredicateQueries) {
    auto prepared = PreparedQuery::Prepare(pq.xpath, doc.alphabet_ptr());
    if (!prepared.ok()) continue;
    PredicateSeriesRow row;
    row.id = pq.id;
    row.xpath = pq.xpath;

    internal::CursorContext ctx{nullptr, &tree, &succinct_index, &text};
    const QueryOptions opts;  // optimized
    std::vector<NodeId> got;
    row.full_ms = bench::BestOfMs(
        [&] {
          auto impl = internal::MakeCursorImpl(ctx, *prepared, opts,
                                               /*allow_streaming=*/true);
          ResultCursor cursor(std::move(*impl));
          got = cursor.Drain();
          const CursorStats stats = cursor.TakeStats();
          row.filter_checked = stats.filter_checked;
          row.filter_rejected = stats.filter_rejected;
        },
        repeats);
    row.selected = got.size();
    row.first_match_us =
        1000.0 * bench::BestOfMs(
                     [&] {
                       auto impl = internal::MakeCursorImpl(
                           ctx, *prepared, opts, /*allow_streaming=*/true);
                       ResultCursor cursor(std::move(*impl));
                       cursor.Drain(1);
                     },
                     repeats);

    auto expect = EvalNodeSetBaseline(prepared->path(), doc);
    row.match = expect.ok() && got == *expect;
    all_match = all_match && row.match;
    pred_rows.push_back(row);

    std::printf(
        "%-4s full %8.3f ms  first match %8.1f us  "
        "[%zu nodes; checked %lld, rejected %lld]%s\n",
        row.id, row.full_ms, row.first_match_us, row.selected,
        static_cast<long long>(row.filter_checked),
        static_cast<long long>(row.filter_rejected),
        row.match ? "" : "  MISMATCH");
  }

  double log_jump = 0, log_sp = 0;
  for (const QueryResultRow& r : rows) {
    log_jump += std::log(r.jump_speedup());
    log_sp += std::log(r.succinct_vs_pointer());
  }
  const double n = static_cast<double>(rows.size());
  const double geo_jump = std::exp(log_jump / n);
  const double geo_sp = std::exp(log_sp / n);
  std::printf(
      "\ngeomean: jumping speeds up the succinct backend %.2fx; "
      "succinct opt eval costs %.2fx the pointer opt eval\n",
      geo_jump, geo_sp);
  std::printf("results: %s\n", all_match ? "all configurations agree"
                                         : "MISMATCH");

  FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n  \"bench\": \"eval_succinct\",\n  \"quick\": %s,\n"
               "  \"scale\": %.6g,\n  \"nodes\": %d,\n"
               "  \"all_match\": %s,\n"
               "  \"geomean_jump_speedup\": %.3f,\n"
               "  \"geomean_succinct_vs_pointer\": %.3f,\n"
               "  \"label_index_bytes\": %zu,\n"
               "  \"label_index_vector_bytes\": %zu,\n"
               "  \"label_index_compression\": %.3f,\n"
               "  \"dense_labels\": %zu,\n  \"sparse_labels\": %zu,\n"
               "  \"succinct_tree_bytes\": %zu,\n"
               "  \"text_store_bytes\": %zu,\n"
               "  \"results\": [\n",
               quick ? "true" : "false", opt.scale, doc.num_nodes(),
               all_match ? "true" : "false", geo_jump, geo_sp,
               postings.bytes, postings.vector_bytes,
               postings.bytes > 0
                   ? static_cast<double>(postings.vector_bytes) /
                         postings.bytes
                   : 0.0,
               postings.dense_labels, postings.sparse_labels,
               tree.MemoryUsage(), text.MemoryUsage());
  for (size_t i = 0; i < rows.size(); ++i) {
    const QueryResultRow& r = rows[i];
    std::fprintf(out,
                 "    {\"query\": \"%s\", \"succinct_nojump_ms\": %.4f, "
                 "\"succinct_jump_ms\": %.4f, \"pointer_jump_ms\": %.4f, "
                 "\"jump_speedup\": %.3f, \"selected\": %zu, "
                 "\"match\": %s}%s\n",
                 r.id, r.succinct_nojump_ms, r.succinct_jump_ms,
                 r.pointer_jump_ms, r.jump_speedup(), r.selected,
                 r.match ? "true" : "false",
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n  \"limit_series\": [\n");
  for (size_t i = 0; i < limit_rows.size(); ++i) {
    const LimitSeriesRow& r = limit_rows[i];
    std::fprintf(out,
                 "    {\"query\": \"%s\", \"xpath\": \"%s\", "
                 "\"first_match_us\": %.3f, \"full_ms\": %.4f, "
                 "\"full_visited\": %lld, \"selected\": %zu, "
                 "\"prefix_ok\": %s,\n     \"limits\": [",
                 r.id, r.xpath, r.first_match_us, r.full_ms,
                 static_cast<long long>(r.full_visited), r.selected,
                 r.prefix_ok ? "true" : "false");
    for (size_t j = 0; j < 3; ++j) {
      const LimitPoint& p = r.points[j];
      std::fprintf(out,
                   "{\"k\": %zu, \"us\": %.3f, \"visited\": %lld, "
                   "\"returned\": %zu}%s",
                   p.k, p.us, static_cast<long long>(p.visited),
                   p.returned, j + 1 < 3 ? ", " : "");
    }
    std::fprintf(out, "]}%s\n", i + 1 < limit_rows.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n  \"predicate_series\": [\n");
  for (size_t i = 0; i < pred_rows.size(); ++i) {
    const PredicateSeriesRow& r = pred_rows[i];
    std::fprintf(out,
                 "    {\"query\": \"%s\", \"xpath\": \"%s\", "
                 "\"full_ms\": %.4f, \"first_match_us\": %.3f, "
                 "\"selected\": %zu, \"filter_checked\": %lld, "
                 "\"filter_rejected\": %lld, \"match\": %s}%s\n",
                 r.id, r.xpath, r.full_ms, r.first_match_us, r.selected,
                 static_cast<long long>(r.filter_checked),
                 static_cast<long long>(r.filter_rejected),
                 r.match ? "true" : "false",
                 i + 1 < pred_rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return all_match ? 0 : 1;
}

}  // namespace
}  // namespace xpwqo

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_eval_succinct.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out PATH]\n", argv[0]);
      return 2;
    }
  }
  return xpwqo::Run(quick, out_path);
}
