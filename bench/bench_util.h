// Shared setup for the benchmark binaries: the XMark document (scale
// overridable via XPWQO_SCALE), timing helpers (best-of-5, like the paper's
// Appendix D protocol), and table formatting.
#ifndef XPWQO_BENCH_BENCH_UTIL_H_
#define XPWQO_BENCH_BENCH_UTIL_H_

#include <functional>
#include <string>
#include <vector>

#include "core/engine.h"
#include "xmark/generator.h"
#include "xmark/workload.h"

namespace xpwqo {
namespace bench {

/// Default scale for the benchmark document. The paper's document is
/// 116 MB / 5,673,051 nodes (scale ~1.0); the default keeps a full bench
/// sweep in seconds. Override with XPWQO_SCALE=1.0 for paper-sized runs.
inline constexpr double kDefaultScale = 0.05;

/// The shared XMark engine (built once per process).
const Engine& XMarkEngine();

/// The scale the shared engine was built with.
double XMarkScale();

/// Milliseconds for one invocation of `fn`, best of `repeats` runs.
double BestOfMs(const std::function<void()>& fn, int repeats = 5);

/// Prints "== <title> ==" plus a reproduction note.
void PrintHeader(const std::string& title, const Engine& engine);

}  // namespace bench
}  // namespace xpwqo

#endif  // XPWQO_BENCH_BENCH_UTIL_H_
