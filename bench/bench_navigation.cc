// Succinct-navigation microbenchmark: the rewritten rank9 / rmM-tree kernels
// vs. replicas of the seed's linear-scan kernels (block-directory rank with a
// per-word popcount loop, bit-by-bit excess searches), on the BP encoding of
// an XMark-style document.
//
// Queries are independent draws from a precomputed pool, matching how the
// evaluators consume these kernels: enumeration loops issue many navigation
// ops whose inputs do not depend on each other, so the out-of-order core
// overlaps them — unless a kernel's data-dependent branches stall it.
//
// Usage: bench_navigation [--quick] [--out PATH]
//   --quick  small document + fewer iterations (CI smoke run)
//   --out    where to write the JSON report (default BENCH_navigation.json)
// XPWQO_SCALE overrides the document scale (default 0.45, ~1.2M nodes).
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <chrono>
#include <algorithm>
#include <bit>
#include <limits>
#include <string>
#include <vector>

#include "index/balanced_parens.h"
#include "index/bit_vector.h"
#include "index/succinct_tree.h"
#include "tree/document.h"
#include "util/strings.h"
#include "xmark/generator.h"

namespace xpwqo {
namespace {

// ------------------------------------------------------- seed kernel replicas

/// The seed BitVector rank/select: 512-bit block directory only, so Rank1
/// pays a position-dependent per-word popcount loop and Select1 a binary
/// search plus an in-block scan.
class SeedBitVector {
 public:
  static constexpr size_t kWordsPerBlock = 8;

  explicit SeedBitVector(const BitVector& bits) : bits_(&bits) {
    size_t num_words = bits.NumWords();
    size_t num_blocks = (num_words + kWordsPerBlock - 1) / kWordsPerBlock;
    block_rank_.resize(num_blocks + 1);
    size_t ones = 0;
    for (size_t b = 0; b < num_blocks; ++b) {
      block_rank_[b] = ones;
      size_t end = std::min(num_words, (b + 1) * kWordsPerBlock);
      for (size_t w = b * kWordsPerBlock; w < end; ++w) {
        ones += std::popcount(bits.Word(w));
      }
    }
    block_rank_[num_blocks] = ones;
  }

  size_t Rank1(size_t i) const {
    size_t word = i >> 6;
    size_t block = word / kWordsPerBlock;
    size_t ones = block_rank_[block];
    for (size_t w = block * kWordsPerBlock; w < word; ++w) {
      ones += std::popcount(bits_->Word(w));
    }
    size_t rem = i & 63;
    if (rem != 0) {
      ones += std::popcount(bits_->Word(word) & ((1ULL << rem) - 1));
    }
    return ones;
  }

  size_t Select1(size_t k) const {
    size_t lo = 0, hi = block_rank_.size() - 1;
    while (lo + 1 < hi) {
      size_t mid = (lo + hi) / 2;
      if (block_rank_[mid] < k) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    size_t remaining = k - block_rank_[lo];
    for (size_t w = lo * kWordsPerBlock;; ++w) {
      size_t ones = std::popcount(bits_->Word(w));
      if (remaining <= ones) {
        uint64_t word = bits_->Word(w);
        for (int bit = 0;; ++bit) {
          if ((word >> bit) & 1) {
            if (--remaining == 0) return 64 * w + bit;
          }
        }
      }
      remaining -= ones;
    }
  }

 private:
  const BitVector* bits_;
  std::vector<uint64_t> block_rank_;
};

/// The seed BalancedParens: flat block/superblock min-max arrays with
/// bit-by-bit excess walks, and Excess() re-running the looping Rank1.
class SeedBalancedParens {
 public:
  static constexpr int64_t kNotFound = -2;
  static constexpr int64_t kBlockBits = 512;
  static constexpr int64_t kBlocksPerSuper = 64;

  SeedBalancedParens(const BitVector& bits, const SeedBitVector& rank)
      : bits_(&bits), rank_(&rank) {
    int64_t n = static_cast<int64_t>(bits.size());
    num_blocks_ = (n + kBlockBits - 1) / kBlockBits;
    block_excess_.resize(num_blocks_ + 1);
    block_min_.resize(num_blocks_);
    block_max_.resize(num_blocks_);
    int64_t e = 0;
    for (int64_t b = 0; b < num_blocks_; ++b) {
      block_excess_[b] = e;
      int64_t lo = std::numeric_limits<int64_t>::max();
      int64_t hi = std::numeric_limits<int64_t>::min();
      int64_t end = std::min(n, (b + 1) * kBlockBits);
      for (int64_t i = b * kBlockBits; i < end; ++i) {
        e += Delta(i);
        lo = std::min(lo, e);
        hi = std::max(hi, e);
      }
      block_min_[b] = lo;
      block_max_[b] = hi;
    }
    block_excess_[num_blocks_] = e;
    int64_t num_super = (num_blocks_ + kBlocksPerSuper - 1) / kBlocksPerSuper;
    super_min_.resize(num_super);
    super_max_.resize(num_super);
    for (int64_t s = 0; s < num_super; ++s) {
      int64_t lo = std::numeric_limits<int64_t>::max();
      int64_t hi = std::numeric_limits<int64_t>::min();
      int64_t end = std::min(num_blocks_, (s + 1) * kBlocksPerSuper);
      for (int64_t b = s * kBlocksPerSuper; b < end; ++b) {
        lo = std::min(lo, block_min_[b]);
        hi = std::max(hi, block_max_[b]);
      }
      super_min_[s] = lo;
      super_max_[s] = hi;
    }
  }

  int64_t Excess(int64_t i) const {
    if (i < 0) return 0;
    size_t r1 = rank_->Rank1(static_cast<size_t>(i) + 1);
    return 2 * static_cast<int64_t>(r1) - (i + 1);
  }

  int64_t FwdSearchExcess(int64_t from, int64_t target) const {
    int64_t n = static_cast<int64_t>(bits_->size());
    if (from >= n) return kNotFound;
    int64_t b = from / kBlockBits;
    int64_t e = Excess(from - 1);
    int64_t block_end = std::min(n, (b + 1) * kBlockBits);
    for (int64_t i = from; i < block_end; ++i) {
      e += Delta(i);
      if (e == target) return i;
    }
    ++b;
    while (b < num_blocks_) {
      if (b % kBlocksPerSuper == 0) {
        int64_t s = b / kBlocksPerSuper;
        if (super_min_[s] > target || super_max_[s] < target) {
          b += kBlocksPerSuper;
          continue;
        }
      }
      if (block_min_[b] <= target && target <= block_max_[b]) {
        e = block_excess_[b];
        int64_t end = std::min(n, (b + 1) * kBlockBits);
        for (int64_t i = b * kBlockBits; i < end; ++i) {
          e += Delta(i);
          if (e == target) return i;
        }
      }
      ++b;
    }
    return kNotFound;
  }

  int64_t BwdSearchExcess(int64_t from, int64_t target) const {
    int64_t n = static_cast<int64_t>(bits_->size());
    if (from >= n) from = n - 1;
    if (from < 0) return target == 0 ? -1 : kNotFound;
    int64_t b = from / kBlockBits;
    int64_t e = Excess(from);
    for (int64_t i = from; i >= b * kBlockBits; --i) {
      if (e == target) return i;
      e -= Delta(i);
    }
    --b;
    while (b >= 0) {
      if ((b + 1) % kBlocksPerSuper == 0) {
        int64_t s = b / kBlocksPerSuper;
        if (super_min_[s] > target || super_max_[s] < target) {
          b -= kBlocksPerSuper;
          continue;
        }
      }
      if (block_min_[b] <= target && target <= block_max_[b]) {
        int64_t end = std::min(n, (b + 1) * kBlockBits);
        e = Excess(end - 1);
        for (int64_t i = end - 1; i >= b * kBlockBits; --i) {
          if (e == target) return i;
          e -= Delta(i);
        }
      }
      --b;
    }
    return target == 0 ? -1 : kNotFound;
  }

  int64_t FindClose(int64_t i) const {
    return FwdSearchExcess(i + 1, Excess(i) - 1);
  }

  int64_t Enclose(int64_t i) const {
    int64_t before = Excess(i - 1);
    if (before == 0) return kNotFound;
    int64_t p = BwdSearchExcess(i - 1, before - 1);
    return p == kNotFound ? kNotFound : p + 1;
  }

 private:
  int Delta(int64_t i) const {
    return bits_->Get(static_cast<size_t>(i)) ? 1 : -1;
  }

  const BitVector* bits_;
  const SeedBitVector* rank_;
  int64_t num_blocks_;
  std::vector<int64_t> block_excess_, block_min_, block_max_;
  std::vector<int64_t> super_min_, super_max_;
};

// ------------------------------------------------------------------- harness

struct OpResult {
  std::string op;
  double new_mops = 0;   // net of harness overhead
  double seed_mops = 0;  // net of harness overhead
  uint64_t checksum_new = 0;
  uint64_t checksum_seed = 0;
  double speedup() const { return new_mops / seed_mops; }
};

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Runs `fn(query)` over `iters` independent queries drawn round-robin from
/// `queries`, best of 5 repeats (the paper's Appendix D protocol), and
/// returns Mops/s. Four accumulators keep four queries in flight, measuring
/// sustained throughput rather than one serial dependency chain — this is
/// the regime enumeration loops run in, and it is where the branchless
/// kernels pull ahead: a mispredicted scan loop flushes the pipeline and
/// caps memory-level parallelism for the seed kernels. The checksum defeats
/// dead-code elimination and verifies both kernels agree.
template <typename Fn>
double TimeOps(int64_t iters, const std::vector<uint64_t>& queries,
               uint64_t* checksum, const Fn& fn) {
  const size_t mask = queries.size() - 1;  // pool sizes are powers of two
  double best_ms = -1;
  uint64_t sum = 0;
  for (int rep = 0; rep < 5; ++rep) {
    const double start = NowMs();
    uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
    for (int64_t i = 0; i < iters; i += 4) {
      const size_t j = static_cast<size_t>(i);
      s0 += fn(queries[j & mask]);
      s1 += fn(queries[(j + 1) & mask]);
      s2 += fn(queries[(j + 2) & mask]);
      s3 += fn(queries[(j + 3) & mask]);
    }
    const double ms = NowMs() - start;
    if (best_ms < 0 || ms < best_ms) best_ms = ms;
    sum = s0 + s1 + s2 + s3;
  }
  *checksum = sum;
  return static_cast<double>(iters) / 1e6 / (best_ms / 1e3);
}

/// Per-op milliseconds the harness itself costs (pool read + loop + sum),
/// measured with an identity "kernel"; subtracted from both sides so the
/// reported numbers are kernel time, not loop time.
double HarnessOverheadMsPerOp(int64_t iters,
                              const std::vector<uint64_t>& queries) {
  uint64_t sink = 0;
  const double mops = TimeOps(iters, queries, &sink,
                              [](uint64_t q) { return q; });
  return 1.0 / (mops * 1e3);
}

/// Mops/s net of harness overhead.
template <typename Fn>
double TimeOpsNet(int64_t iters, const std::vector<uint64_t>& queries,
                  double overhead_ms_per_op, uint64_t* checksum,
                  const Fn& fn) {
  const double gross_mops = TimeOps(iters, queries, checksum, fn);
  const double ms_per_op = 1.0 / (gross_mops * 1e3) - overhead_ms_per_op;
  return 1.0 / (std::max(ms_per_op, 1e-9) * 1e3);
}

/// Emits the balanced-parentheses encoding of `doc`.
BitVector EncodeBp(const Document& doc) {
  BitVector bp;
  std::vector<NodeId> stack;
  if (doc.root() != kNullNode) stack.push_back(doc.root());
  while (!stack.empty()) {
    NodeId top = stack.back();
    stack.pop_back();
    if (top < 0) {
      bp.PushBack(false);
      continue;
    }
    bp.PushBack(true);
    stack.push_back(~top);
    const size_t base = stack.size();
    for (NodeId c = doc.first_child(top); c != kNullNode;
         c = doc.next_sibling(c)) {
      stack.push_back(c);
    }
    std::reverse(stack.begin() + base, stack.end());
  }
  bp.Freeze();
  return bp;
}

int Run(bool quick, const std::string& out_path) {
  XMarkOptions opt;
  opt.scale = XMarkScaleFromEnv(quick ? 0.02 : 0.45);
  std::printf("generating XMark document (scale %.3g)...\n", opt.scale);
  Document doc = GenerateXMark(opt);
  std::printf("document: %s nodes\n",
              WithCommas(static_cast<uint64_t>(doc.num_nodes())).c_str());
  if (!quick && doc.num_nodes() < 1000000) {
    std::printf("warning: fewer than 1M nodes; raise XPWQO_SCALE\n");
  }

  BitVector bp = EncodeBp(doc);
  BalancedParens ops(&bp);
  SeedBitVector seed_bv(bp);
  SeedBalancedParens seed_ops(bp, seed_bv);

  const size_t n = bp.size();
  const size_t num_opens = bp.CountOnes();
  const int64_t iters = quick ? 200000 : 2000000;
  std::vector<OpResult> results;

  auto mix = [](uint64_t x) {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 29;
    return x;
  };
  // Precomputed query pools (power-of-two sized) so both kernels pay
  // identical query-generation cost.
  constexpr size_t kPool = 1 << 16;
  std::vector<uint64_t> positions(kPool), ks(kPool), opens(kPool);
  for (size_t i = 0; i < kPool; ++i) {
    positions[i] = mix(i * 2654435761u + 17) % (n + 1);
    ks[i] = 1 + mix(i * 40503u + 5) % num_opens;
    opens[i] = bp.Select1(1 + mix(i * 69069u + 11) % num_opens);
  }

  const double overhead = HarnessOverheadMsPerOp(iters, positions);
  {
    OpResult r;
    r.op = "Rank1";
    r.new_mops = TimeOpsNet(iters, positions, overhead, &r.checksum_new,
                            [&](uint64_t q) { return bp.Rank1(q); });
    r.seed_mops = TimeOpsNet(iters, positions, overhead, &r.checksum_seed,
                             [&](uint64_t q) { return seed_bv.Rank1(q); });
    results.push_back(r);
  }
  {
    OpResult r;
    r.op = "Select1";
    r.new_mops = TimeOpsNet(iters, ks, overhead, &r.checksum_new,
                            [&](uint64_t q) { return bp.Select1(q); });
    r.seed_mops = TimeOpsNet(iters, ks, overhead, &r.checksum_seed,
                             [&](uint64_t q) { return seed_bv.Select1(q); });
    results.push_back(r);
  }
  {
    OpResult r;
    r.op = "FindClose";
    r.new_mops = TimeOpsNet(iters, opens, overhead, &r.checksum_new,
                            [&](uint64_t q) {
      return static_cast<uint64_t>(ops.FindClose(static_cast<int64_t>(q)));
    });
    r.seed_mops = TimeOpsNet(iters / 4, opens, overhead, &r.checksum_seed,
                             [&](uint64_t q) {
      return static_cast<uint64_t>(
          seed_ops.FindClose(static_cast<int64_t>(q)));
    });
    results.push_back(r);
  }
  {
    OpResult r;
    r.op = "Enclose";
    r.new_mops = TimeOpsNet(iters, opens, overhead, &r.checksum_new,
                            [&](uint64_t q) {
      return static_cast<uint64_t>(ops.Enclose(static_cast<int64_t>(q)) + 2);
    });
    r.seed_mops = TimeOpsNet(iters / 4, opens, overhead, &r.checksum_seed,
                             [&](uint64_t q) {
      return static_cast<uint64_t>(
          seed_ops.Enclose(static_cast<int64_t>(q)) + 2);
    });
    results.push_back(r);
  }
  {
    OpResult r;
    r.op = "Excess";
    r.new_mops = TimeOpsNet(iters, positions, overhead, &r.checksum_new,
                            [&](uint64_t q) {
      return static_cast<uint64_t>(ops.Excess(static_cast<int64_t>(q) - 1));
    });
    r.seed_mops = TimeOpsNet(iters / 2, positions, overhead, &r.checksum_seed,
                             [&](uint64_t q) {
      return static_cast<uint64_t>(
          seed_ops.Excess(static_cast<int64_t>(q) - 1));
    });
    results.push_back(r);
  }

  std::printf("\n%-10s %14s %14s %9s\n", "op", "new Mops/s", "seed Mops/s",
              "speedup");
  bool checksums_ok = true;
  for (const OpResult& r : results) {
    std::printf("%-10s %14.1f %14.1f %8.1fx\n", r.op.c_str(), r.new_mops,
                r.seed_mops, r.speedup());
    // Chains with different iteration counts can't compare checksums.
    if (r.op == "Rank1" || r.op == "Select1") {
      checksums_ok = checksums_ok && r.checksum_new == r.checksum_seed;
    }
  }
  std::printf("checksums: %s\n", checksums_ok ? "ok" : "MISMATCH");

  FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n  \"bench\": \"navigation\",\n  \"quick\": %s,\n"
               "  \"scale\": %.6g,\n  \"nodes\": %d,\n  \"bp_bits\": %zu,\n"
               "  \"results\": [\n",
               quick ? "true" : "false", opt.scale, doc.num_nodes(), n);
  for (size_t i = 0; i < results.size(); ++i) {
    const OpResult& r = results[i];
    std::fprintf(out,
                 "    {\"op\": \"%s\", \"new_mops\": %.2f, "
                 "\"seed_mops\": %.2f, \"speedup\": %.2f}%s\n",
                 r.op.c_str(), r.new_mops, r.seed_mops, r.speedup(),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return checksums_ok ? 0 : 1;
}

}  // namespace
}  // namespace xpwqo

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_navigation.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out PATH]\n", argv[0]);
      return 2;
    }
  }
  return xpwqo::Run(quick, out_path);
}
