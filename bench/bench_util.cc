#include "bench_util.h"

#include <chrono>
#include <cstdio>

#include "util/strings.h"

namespace xpwqo {
namespace bench {
namespace {

double g_scale = 0;

Engine BuildEngine() {
  XMarkOptions opt;
  opt.scale = XMarkScaleFromEnv(kDefaultScale);
  g_scale = opt.scale;
  return Engine::FromDocument(GenerateXMark(opt));
}

}  // namespace

const Engine& XMarkEngine() {
  static Engine* engine = new Engine(BuildEngine());
  return *engine;
}

double XMarkScale() {
  XMarkEngine();
  return g_scale;
}

double BestOfMs(const std::function<void()>& fn, int repeats) {
  double best = -1;
  for (int i = 0; i < repeats; ++i) {
    auto start = std::chrono::steady_clock::now();
    fn();
    auto end = std::chrono::steady_clock::now();
    double ms =
        std::chrono::duration<double, std::milli>(end - start).count();
    if (best < 0 || ms < best) best = ms;
  }
  return best;
}

void PrintHeader(const std::string& title, const Engine& engine) {
  std::printf("== %s ==\n", title.c_str());
  std::printf(
      "document: XMark-like, scale %.3g, %s nodes "
      "(paper: 116MB, 5,673,051 nodes; set XPWQO_SCALE to change)\n\n",
      XMarkScale(),
      WithCommas(static_cast<uint64_t>(engine.document().num_nodes()))
          .c_str());
}

}  // namespace bench
}  // namespace xpwqo
