// Ablation for information propagation (§4.4): optimized evaluation with
// and without evaluating transitions after the first child.
#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace xpwqo {
namespace {

void RunQuery(benchmark::State& state, const char* xpath, bool info_prop) {
  const Engine& engine = bench::XMarkEngine();
  auto compiled = engine.Compile(xpath);
  if (!compiled.ok()) {
    state.SkipWithError(compiled.status().ToString().c_str());
    return;
  }
  QueryOptions options;
  options.strategy = EvalStrategy::kOptimized;
  options.info_propagation = info_prop;
  int64_t visited = 0;
  for (auto _ : state) {
    auto r = engine.Run(*compiled, options);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    visited = r->stats.nodes_visited;
    benchmark::DoNotOptimize(r->nodes.data());
  }
  state.counters["visited"] = static_cast<double>(visited);
}

void RegisterAll() {
  // Predicate-heavy queries benefit; plain paths are unaffected (control).
  for (const WorkloadQuery& q : Figure2Workload()) {
    for (bool on : {true, false}) {
      std::string name =
          std::string(q.id) + (on ? "/infoprop_on" : "/infoprop_off");
      benchmark::RegisterBenchmark(
          name.c_str(), [xpath = q.xpath, on](benchmark::State& state) {
            RunQuery(state, xpath, on);
          })
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace xpwqo

int main(int argc, char** argv) {
  xpwqo::bench::PrintHeader("Ablation: information propagation",
                            xpwqo::bench::XMarkEngine());
  xpwqo::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
