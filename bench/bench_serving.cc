// Serving-runtime benchmark: N closed-loop client threads drive a Zipfian
// query mix through a ServingRuntime over a multi-shard XMark collection,
// at 1x, 2x and 4x of the runtime's capacity (workers + queue). Reports
// QPS and latency percentiles per phase, the shed/deadline counts that
// show graceful overload degradation (shedding kicks in under overload
// while admitted queries keep a bounded p99), and the measured overhead
// of the in-loop governance checks against an ungoverned sweep.
//
// Usage: bench_serving [--quick] [--out PATH]
//   --quick  small shards + short phases (CI smoke run; scripts/check.sh)
//   --out    where to write the JSON report (default BENCH_serving.json)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/collection.h"
#include "serve/serving_runtime.h"
#include "util/strings.h"
#include "xmark/generator.h"
#include "xml/serializer.h"

namespace xpwqo {
namespace {

using std::chrono::duration_cast;
using std::chrono::microseconds;
using std::chrono::milliseconds;
using std::chrono::steady_clock;

constexpr const char* kQueries[] = {
    "//listitem//keyword",       // heavy sweep, many results
    "//keyword",                 // label scan
    "//parlist//listitem",       // recursive chain
    "//mailbox//mail",           // medium selectivity
    "//annotation//description", // closed-auction subtree
    "//person//homepage",        // sparse
    "//text//emph",              // text markup
    "//item//mailbox",           // shallow chain
};
constexpr int kNumQueries = 8;

/// Zipf(1) over the query list: rank r gets weight 1/(r+1).
int ZipfPick(uint64_t* state) {
  *state = *state * 6364136223846793005ull + 1442695040888963407ull;
  const double u = static_cast<double>((*state >> 11) & ((1ull << 53) - 1)) /
                   static_cast<double>(1ull << 53);
  static double cumulative[kNumQueries];
  static const bool init = [] {
    double total = 0;
    for (int i = 0; i < kNumQueries; ++i) total += 1.0 / (i + 1);
    double acc = 0;
    for (int i = 0; i < kNumQueries; ++i) {
      acc += 1.0 / (i + 1) / total;
      cumulative[i] = acc;
    }
    return true;
  }();
  (void)init;
  for (int i = 0; i < kNumQueries; ++i) {
    if (u < cumulative[i]) return i;
  }
  return kNumQueries - 1;
}

struct PhaseResult {
  int multiplier = 0;
  int clients = 0;
  double duration_s = 0;
  double qps = 0;  // completed-OK jobs per second
  int64_t p50_us = 0;
  int64_t p99_us = 0;
  ServingStatsSnapshot stats;
};

PhaseResult RunPhase(const Collection& collection,
                     const std::vector<std::shared_ptr<const PreparedQuery>>&
                         prepared,
                     int multiplier, int clients, milliseconds duration,
                     milliseconds deadline) {
  ServingRuntimeOptions options;
  options.num_threads = 4;
  options.max_queue = 4;
  ServingRuntime runtime(&collection, options);

  const steady_clock::time_point stop = steady_clock::now() + duration;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      uint64_t rng = 0x9e3779b97f4a7c15ull ^ (static_cast<uint64_t>(c) << 32);
      while (steady_clock::now() < stop) {
        ServeRequest request;
        request.context = QueryContext::WithTimeout(deadline);
        const ServeResult result =
            runtime.Execute(prepared[ZipfPick(&rng)], request);
        if (result.status.code() == StatusCode::kResourceExhausted) {
          // Shed: back off like a real client instead of hot-spinning
          // the admission path.
          std::this_thread::sleep_for(microseconds(200));
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  runtime.Shutdown();

  PhaseResult phase;
  phase.multiplier = multiplier;
  phase.clients = clients;
  phase.duration_s = duration.count() / 1000.0;
  phase.stats = runtime.Stats();
  phase.qps = static_cast<double>(phase.stats.ok) / phase.duration_s;
  phase.p50_us = phase.stats.latency_us.Percentile(0.5);
  phase.p99_us = phase.stats.latency_us.Percentile(0.99);
  return phase;
}

int Run(bool quick, const std::string& out_path) {
  const int shards = quick ? 3 : 6;
  const double shard_scale = quick ? 0.008 : 0.04;
  const milliseconds phase_duration(quick ? 250 : 2000);
  // Generous against the ~100 ms multi-shard sweeps at 1x, so base load
  // mostly completes; under 4x overload the queue wait eats it and the
  // deadline + shedding paths take over.
  const milliseconds deadline(250);

  Collection collection;
  int64_t total_nodes = 0;
  std::printf("building %d XMark shards (scale %.3g each)...\n", shards,
              shard_scale);
  for (int s = 0; s < shards; ++s) {
    XMarkOptions opt;
    opt.scale = shard_scale;
    opt.seed = 20100324 + static_cast<uint64_t>(s);
    Document doc = GenerateXMark(opt);
    total_nodes += doc.num_nodes();
    LoadOptions load;
    load.backend = TreeBackend::kSuccinct;
    const Status added = collection.AddXmlString(
        "shard" + std::to_string(s), SerializeXml(doc), load);
    if (!added.ok()) {
      std::fprintf(stderr, "shard build failed: %s\n",
                   added.ToString().c_str());
      return 1;
    }
  }
  std::printf("collection: %d shards, %s nodes\n", shards,
              WithCommas(static_cast<uint64_t>(total_nodes)).c_str());

  std::vector<std::shared_ptr<const PreparedQuery>> prepared;
  for (const char* xpath : kQueries) {
    auto query = collection.PrepareCached(xpath);
    if (!query.ok()) {
      std::fprintf(stderr, "prepare failed for %s: %s\n", xpath,
                   query.status().ToString().c_str());
      return 1;
    }
    prepared.push_back(*query);
  }

  // Governance overhead: the same full sweep ungoverned vs. under an
  // ExecControl with no active limit (the monitor still charges every
  // visited node — this is the amortized-check cost the hot loops pay).
  double ungoverned_ms = 1e30, governed_ms = 1e30;
  {
    ExecControl control;  // no deadline, no cancel, no budget
    const int reps = quick ? 3 : 9;
    const int drains = 3;  // per timed sample, to swamp timer noise
    for (int r = 0; r < reps; ++r) {
      const steady_clock::time_point t0 = steady_clock::now();
      for (int d = 0; d < drains; ++d) {
        auto cursor = collection.OpenCursor("shard0", *prepared[0]);
        if (cursor.ok()) cursor->Drain();
      }
      ungoverned_ms = std::min(
          ungoverned_ms,
          duration_cast<microseconds>(steady_clock::now() - t0).count() /
              1000.0 / drains);

      QueryOptions governed;
      governed.control = &control;
      const steady_clock::time_point t1 = steady_clock::now();
      for (int d = 0; d < drains; ++d) {
        auto gcursor = collection.OpenCursor("shard0", *prepared[0], governed);
        if (gcursor.ok()) gcursor->Drain();
      }
      governed_ms = std::min(
          governed_ms,
          duration_cast<microseconds>(steady_clock::now() - t1).count() /
              1000.0 / drains);
    }
  }
  const double overhead_pct =
      (governed_ms / ungoverned_ms - 1.0) * 100.0;
  std::printf(
      "governance overhead: ungoverned %.3f ms, governed %.3f ms "
      "(%+.2f%%)\n",
      ungoverned_ms, governed_ms, overhead_pct);

  // Overload ladder: capacity is num_threads=4 closed-loop clients; 2x
  // and 4x oversubscribe the pool so the queue and then the shedder work.
  std::vector<PhaseResult> phases;
  for (const int multiplier : {1, 2, 4}) {
    const int clients = 4 * multiplier;
    std::printf("phase %dx: %d clients for %.2fs...\n", multiplier, clients,
                phase_duration.count() / 1000.0);
    phases.push_back(RunPhase(collection, prepared, multiplier, clients,
                              phase_duration, deadline));
    const PhaseResult& p = phases.back();
    std::printf(
        "  %6.0f qps  p50 %6lld us  p99 %6lld us  ok %lld  shed %lld  "
        "deadline %lld  submitted %lld\n",
        p.qps, static_cast<long long>(p.p50_us),
        static_cast<long long>(p.p99_us),
        static_cast<long long>(p.stats.ok),
        static_cast<long long>(p.stats.shed),
        static_cast<long long>(p.stats.deadline_exceeded),
        static_cast<long long>(p.stats.submitted));
  }

  bool accounting_ok = true;
  for (const PhaseResult& p : phases) {
    accounting_ok = accounting_ok &&
                    p.stats.shed + p.stats.outcome_total() ==
                        p.stats.submitted;
  }
  const PhaseResult& overload = phases.back();
  std::printf("overload (4x): %lld shed, p99 %lld us, accounting %s\n",
              static_cast<long long>(overload.stats.shed),
              static_cast<long long>(overload.p99_us),
              accounting_ok ? "balanced" : "BROKEN");

  FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n  \"bench\": \"serving\",\n  \"quick\": %s,\n"
               "  \"shards\": %d,\n  \"nodes\": %lld,\n"
               "  \"num_threads\": 4,\n  \"max_queue\": 4,\n"
               "  \"deadline_ms\": %lld,\n"
               "  \"governance_overhead_pct\": %.3f,\n"
               "  \"accounting_ok\": %s,\n"
               "  \"overload\": [\n",
               quick ? "true" : "false", shards,
               static_cast<long long>(total_nodes),
               static_cast<long long>(deadline.count()), overhead_pct,
               accounting_ok ? "true" : "false");
  for (size_t i = 0; i < phases.size(); ++i) {
    const PhaseResult& p = phases[i];
    std::fprintf(
        out,
        "    {\"multiplier\": %d, \"clients\": %d, \"duration_s\": %.3f, "
        "\"qps\": %.1f, \"p50_us\": %lld, \"p99_us\": %lld,\n"
        "     \"submitted\": %lld, \"ok\": %lld, \"shed\": %lld, "
        "\"deadline_exceeded\": %lld, \"cancelled\": %lld, "
        "\"docs_failed\": %lld, \"retries\": %lld,\n"
        "     \"cache_hits\": %lld, \"cache_misses\": %lld}%s\n",
        p.multiplier, p.clients, p.duration_s, p.qps,
        static_cast<long long>(p.p50_us), static_cast<long long>(p.p99_us),
        static_cast<long long>(p.stats.submitted),
        static_cast<long long>(p.stats.ok),
        static_cast<long long>(p.stats.shed),
        static_cast<long long>(p.stats.deadline_exceeded),
        static_cast<long long>(p.stats.cancelled),
        static_cast<long long>(p.stats.docs_failed),
        static_cast<long long>(p.stats.retries),
        static_cast<long long>(p.stats.query_cache_hits),
        static_cast<long long>(p.stats.query_cache_misses),
        i + 1 < phases.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return accounting_ok ? 0 : 1;
}

}  // namespace
}  // namespace xpwqo

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_serving.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out PATH]\n", argv[0]);
      return 2;
    }
  }
  return xpwqo::Run(quick, out_path);
}
