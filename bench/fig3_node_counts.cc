// Reproduces Figure 3: per query, (1) selected nodes, (2) nodes visited
// with jumping, (3) nodes visited without jumping, (4) memoized
// configurations, (5) selected/visited ratio. The paper's "# nodes" marker
// (full traversal) appears when a run visits every node.
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "util/strings.h"

namespace xpwqo {
namespace {

std::string CountOrFull(int64_t visited, int64_t total) {
  if (visited >= total) return "# nodes";
  return WithCommas(static_cast<uint64_t>(visited));
}

int Main() {
  const Engine& engine = bench::XMarkEngine();
  bench::PrintHeader("Figure 3: selected and visited nodes (w and w/o "
                     "jumping), memoized configurations",
                     engine);
  const int64_t total = engine.document().num_nodes();

  std::printf("%-5s %12s %12s %12s %8s %8s\n", "query", "(1)selected",
              "(2)w/jump", "(3)wo/jump", "(4)memo", "(5)ratio");
  for (const WorkloadQuery& q : Figure2Workload()) {
    QueryOptions opt_jump;
    opt_jump.strategy = EvalStrategy::kOptimized;
    auto jump = engine.Run(q.xpath, opt_jump);
    if (!jump.ok()) {
      std::printf("%-5s ERROR %s\n", q.id, jump.status().ToString().c_str());
      continue;
    }
    QueryOptions opt_memo;
    opt_memo.strategy = EvalStrategy::kMemoized;
    auto memo = engine.Run(q.xpath, opt_memo);
    if (!memo.ok()) continue;

    int64_t selected = static_cast<int64_t>(jump->nodes.size());
    int64_t with_jump = jump->stats.nodes_visited;
    int64_t wo_jump = memo->stats.nodes_visited;
    int64_t memo_entries =
        jump->stats.memo_step_entries + jump->stats.memo_eval_entries;
    double ratio =
        with_jump == 0 ? 0.0 : 100.0 * static_cast<double>(selected) /
                                   static_cast<double>(with_jump);
    std::printf("%-5s %12s %12s %12s %8s %7.1f%%\n", q.id,
                WithCommas(static_cast<uint64_t>(selected)).c_str(),
                WithCommas(static_cast<uint64_t>(with_jump)).c_str(),
                CountOrFull(wo_jump, total).c_str(),
                WithCommas(static_cast<uint64_t>(memo_entries)).c_str(),
                ratio);
  }
  std::printf("\n# nodes = %s (full traversal)\n",
              WithCommas(static_cast<uint64_t>(total)).c_str());
  std::printf(
      "\npaper shape: realistic queries (Q01-Q09, except Q08) select >10%% "
      "of visited;\nQ05 touches only relevant nodes; Q10-Q15 check "
      "predicates with <=2 extra visits;\nmemo tables stay tiny (tens of "
      "entries).\n");
  return 0;
}

}  // namespace
}  // namespace xpwqo

int main() { return xpwqo::Main(); }
