// End-to-end server benchmark: N closed-loop HTTP clients drive a Zipfian
// query mix over real sockets through xpathd's server stack (epoll loop →
// ServingRuntime → multi-shard XMark collection), at 1x, 2x and 4x of the
// runtime's capacity. Reports per-phase RPS and client-observed latency
// percentiles, plus the 503/504 counts that show the overload ladder
// working end to end: at 1x nearly everything is 200, at 4x the shedder
// refuses the excess while the p99 of admitted requests stays bounded.
//
// Usage: bench_net [--quick] [--out PATH]
//   --quick  small shards + short phases (CI smoke run; scripts/check.sh)
//   --out    where to write the JSON report (default BENCH_net.json)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/collection.h"
#include "net/client.h"
#include "net/server.h"
#include "serve/serving_runtime.h"
#include "util/strings.h"
#include "xmark/generator.h"
#include "xml/serializer.h"

namespace xpwqo {
namespace {

using std::chrono::duration_cast;
using std::chrono::microseconds;
using std::chrono::milliseconds;
using std::chrono::steady_clock;

constexpr const char* kQueries[] = {
    "//listitem//keyword",       // heavy sweep, many results
    "//keyword",                 // label scan
    "//parlist//listitem",       // recursive chain
    "//mailbox//mail",           // medium selectivity
    "//annotation//description", // closed-auction subtree
    "//person//homepage",        // sparse
    "//text//emph",              // text markup
    "//item//mailbox",           // shallow chain
};
constexpr int kNumQueries = 8;

/// Zipf(1) over the query list: rank r gets weight 1/(r+1).
int ZipfPick(uint64_t* state) {
  *state = *state * 6364136223846793005ull + 1442695040888963407ull;
  const double u = static_cast<double>((*state >> 11) & ((1ull << 53) - 1)) /
                   static_cast<double>(1ull << 53);
  static double cumulative[kNumQueries];
  static const bool init = [] {
    double total = 0;
    for (int i = 0; i < kNumQueries; ++i) total += 1.0 / (i + 1);
    double acc = 0;
    for (int i = 0; i < kNumQueries; ++i) {
      acc += 1.0 / (i + 1) / total;
      cumulative[i] = acc;
    }
    return true;
  }();
  (void)init;
  for (int i = 0; i < kNumQueries; ++i) {
    if (u < cumulative[i]) return i;
  }
  return kNumQueries - 1;
}

std::string PercentEncode(std::string_view s) {
  static const char* hex = "0123456789ABCDEF";
  std::string out;
  out.reserve(s.size() * 3);
  for (const char c : s) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                      c == '.' || c == '~';
    if (safe) {
      out.push_back(c);
    } else {
      out.push_back('%');
      out.push_back(hex[(static_cast<unsigned char>(c) >> 4) & 0xf]);
      out.push_back(hex[static_cast<unsigned char>(c) & 0xf]);
    }
  }
  return out;
}

struct PhaseResult {
  int multiplier = 0;
  int clients = 0;
  double duration_s = 0;
  int64_t requests = 0;  // responses read by clients, any status
  int64_t ok = 0;        // 200
  int64_t shed = 0;      // 503
  int64_t deadline = 0;  // 504
  int64_t errors = 0;    // transport failures / unexpected statuses
  double rps = 0;        // ok per second
  int64_t p50_us = 0;    // client-observed, 200s only
  int64_t p99_us = 0;
};

PhaseResult RunPhase(const Collection& collection, int num_threads,
                     int multiplier, milliseconds duration,
                     const std::vector<std::string>& targets) {
  // A fresh runtime + server per phase: counters start at zero and no
  // queue backlog leaks across phases.
  ServingRuntimeOptions runtime_options;
  runtime_options.num_threads = num_threads;
  runtime_options.max_queue = static_cast<size_t>(num_threads);
  ServingRuntime runtime(&collection, runtime_options);
  net::HttpServer server(&collection, &runtime, {});
  PhaseResult phase;
  phase.multiplier = multiplier;
  phase.clients = num_threads * multiplier;
  phase.duration_s = duration.count() / 1000.0;
  if (!server.Start().ok()) {
    std::fprintf(stderr, "server start failed\n");
    return phase;
  }

  std::mutex merge_mu;
  std::vector<int64_t> latencies;
  std::atomic<int64_t> requests{0}, ok{0}, shed{0}, deadline_hits{0},
      errors{0};
  const steady_clock::time_point stop = steady_clock::now() + duration;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(phase.clients));
  for (int c = 0; c < phase.clients; ++c) {
    threads.emplace_back([&, c] {
      uint64_t rng = 0x9e3779b97f4a7c15ull ^ (static_cast<uint64_t>(c) << 32);
      net::BlockingHttpClient client;
      if (!client.Connect(server.port()).ok()) {
        errors.fetch_add(1);
        return;
      }
      std::vector<int64_t> local;
      while (steady_clock::now() < stop) {
        const std::string& target = targets[ZipfPick(&rng)];
        const steady_clock::time_point t0 = steady_clock::now();
        auto resp = client.Get(target, "X-Deadline-Ms: 250\r\n");
        requests.fetch_add(1);
        if (!resp.ok()) {
          errors.fetch_add(1);
          if (!client.Connect(server.port()).ok()) return;
          continue;
        }
        if (resp->status == 200) {
          ok.fetch_add(1);
          local.push_back(
              duration_cast<microseconds>(steady_clock::now() - t0).count());
        } else if (resp->status == 503) {
          shed.fetch_add(1);
          // Back off like a real client instead of hot-spinning the
          // admission path.
          std::this_thread::sleep_for(microseconds(200));
        } else if (resp->status == 504) {
          deadline_hits.fetch_add(1);
        } else {
          errors.fetch_add(1);
        }
      }
      std::lock_guard<std::mutex> lock(merge_mu);
      latencies.insert(latencies.end(), local.begin(), local.end());
    });
  }
  for (std::thread& t : threads) t.join();
  server.Stop();
  runtime.Shutdown();

  phase.requests = requests.load();
  phase.ok = ok.load();
  phase.shed = shed.load();
  phase.deadline = deadline_hits.load();
  phase.errors = errors.load();
  phase.rps = static_cast<double>(phase.ok) / phase.duration_s;
  std::sort(latencies.begin(), latencies.end());
  if (!latencies.empty()) {
    phase.p50_us = latencies[latencies.size() / 2];
    phase.p99_us = latencies[latencies.size() * 99 / 100];
  }
  return phase;
}

int Run(bool quick, const std::string& out_path) {
  const int shards = quick ? 3 : 6;
  const double shard_scale = quick ? 0.008 : 0.04;
  const milliseconds phase_duration(quick ? 300 : 2000);
  const int num_threads = 2;

  Collection collection;
  int64_t total_nodes = 0;
  std::printf("building %d XMark shards (scale %.3g each)...\n", shards,
              shard_scale);
  for (int s = 0; s < shards; ++s) {
    XMarkOptions opt;
    opt.scale = shard_scale;
    opt.seed = 20100324 + static_cast<uint64_t>(s);
    Document doc = GenerateXMark(opt);
    total_nodes += doc.num_nodes();
    LoadOptions load;
    load.backend = TreeBackend::kSuccinct;
    const Status added = collection.AddXmlString(
        "shard" + std::to_string(s), SerializeXml(doc), load);
    if (!added.ok()) {
      std::fprintf(stderr, "shard build failed: %s\n",
                   added.ToString().c_str());
      return 1;
    }
  }
  std::printf("collection: %d shards, %s nodes\n", shards,
              WithCommas(static_cast<uint64_t>(total_nodes)).c_str());

  std::vector<std::string> targets;
  for (const char* xpath : kQueries) {
    targets.push_back("/query?q=" + PercentEncode(xpath));
  }

  // Overload ladder: capacity is num_threads closed-loop clients; 2x and
  // 4x oversubscribe the pool so queue wait, the deadline and the shedder
  // govern — now measured through the whole socket path.
  std::vector<PhaseResult> phases;
  for (const int multiplier : {1, 2, 4}) {
    std::printf("phase %dx: %d clients for %.2fs...\n", multiplier,
                num_threads * multiplier, phase_duration.count() / 1000.0);
    phases.push_back(RunPhase(collection, num_threads, multiplier,
                              phase_duration, targets));
    const PhaseResult& p = phases.back();
    std::printf(
        "  %ld requests, %.0f rps ok, p50 %ld us, p99 %ld us, "
        "%ld shed, %ld deadline, %ld errors\n",
        static_cast<long>(p.requests), p.rps, static_cast<long>(p.p50_us),
        static_cast<long>(p.p99_us), static_cast<long>(p.shed),
        static_cast<long>(p.deadline), static_cast<long>(p.errors));
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n  \"bench\": \"net\",\n  \"quick\": %s,\n"
               "  \"server_threads\": %d,\n"
               "  \"collection\": {\"shards\": %d, \"nodes\": %lld},\n"
               "  \"phases\": [\n",
               quick ? "true" : "false", num_threads, shards,
               static_cast<long long>(total_nodes));
  for (size_t i = 0; i < phases.size(); ++i) {
    const PhaseResult& p = phases[i];
    std::fprintf(
        out,
        "    {\"multiplier\": %d, \"clients\": %d, \"duration_s\": %.3f,\n"
        "     \"requests\": %lld, \"ok\": %lld, \"shed\": %lld,\n"
        "     \"deadline\": %lld, \"errors\": %lld, \"rps\": %.1f,\n"
        "     \"p50_us\": %lld, \"p99_us\": %lld}%s\n",
        p.multiplier, p.clients, p.duration_s,
        static_cast<long long>(p.requests), static_cast<long long>(p.ok),
        static_cast<long long>(p.shed), static_cast<long long>(p.deadline),
        static_cast<long long>(p.errors), p.rps,
        static_cast<long long>(p.p50_us), static_cast<long long>(p.p99_us),
        i + 1 < phases.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace xpwqo

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_net.json";
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--quick")) {
      quick = true;
    } else if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_net [--quick] [--out PATH]\n");
      return 2;
    }
  }
  return xpwqo::Run(quick, out_path);
}
