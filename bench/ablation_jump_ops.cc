// Micro-benchmarks for the jumping primitives of Definition 3.2 (d_t, f_t
// via NextTopmost, l_t, r_t) and the O(1) label counts over the XMark index.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "util/random.h"

namespace xpwqo {
namespace {

LabelSet KeywordSet() {
  LabelId kw = bench::XMarkEngine().document().alphabet().Find("keyword");
  return LabelSet::Of({kw});
}

void BM_FirstBinaryDescendant(benchmark::State& state) {
  const Engine& engine = bench::XMarkEngine();
  const TreeIndex& index = engine.index();
  LabelSet set = KeywordSet();
  Random rng(1);
  int32_t n = engine.document().num_nodes();
  for (auto _ : state) {
    NodeId node = static_cast<NodeId>(rng.Uniform(n));
    benchmark::DoNotOptimize(index.FirstBinaryDescendant(node, set));
  }
}
BENCHMARK(BM_FirstBinaryDescendant);

void BM_TopmostEnumeration(benchmark::State& state) {
  const Engine& engine = bench::XMarkEngine();
  const TreeIndex& index = engine.index();
  LabelSet set = KeywordSet();
  NodeId root = engine.document().root();
  for (auto _ : state) {
    int64_t count = 0;
    for (NodeId m = index.FirstBinaryDescendant(root, set); m != kNullNode;
         m = index.NextTopmost(m, set, root)) {
      ++count;
    }
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_TopmostEnumeration);

void BM_LeftPathFirst(benchmark::State& state) {
  const Engine& engine = bench::XMarkEngine();
  const TreeIndex& index = engine.index();
  LabelSet set = KeywordSet();
  Random rng(2);
  int32_t n = engine.document().num_nodes();
  for (auto _ : state) {
    NodeId node = static_cast<NodeId>(rng.Uniform(n));
    benchmark::DoNotOptimize(index.LeftPathFirst(node, set));
  }
}
BENCHMARK(BM_LeftPathFirst);

void BM_RightPathFirst(benchmark::State& state) {
  const Engine& engine = bench::XMarkEngine();
  const TreeIndex& index = engine.index();
  LabelSet set = KeywordSet();
  Random rng(3);
  int32_t n = engine.document().num_nodes();
  for (auto _ : state) {
    NodeId node = static_cast<NodeId>(rng.Uniform(n));
    benchmark::DoNotOptimize(index.RightPathFirst(node, set));
  }
}
BENCHMARK(BM_RightPathFirst);

void BM_LabelCount(benchmark::State& state) {
  const Engine& engine = bench::XMarkEngine();
  LabelId kw = engine.document().alphabet().Find("keyword");
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.index().Count(kw));
  }
}
BENCHMARK(BM_LabelCount);

}  // namespace
}  // namespace xpwqo

int main(int argc, char** argv) {
  xpwqo::bench::PrintHeader("Ablation: jump primitive micro-benchmarks",
                            xpwqo::bench::XMarkEngine());
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
